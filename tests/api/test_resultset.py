"""Cursor/pagination tests for :class:`repro.api.ResultSet`."""

import pytest

from repro.api import Cursor, Database
from repro.exceptions import QueryError
from repro.workloads.fraud import example9_graph
from repro.workloads.worstcase import diamond_chain

QUERY = "h* s (h | s)*"


@pytest.fixture
def db():
    return Database(example9_graph())


def _edges(rows):
    return [row.walk.edges for row in rows]


def _drain_pages(query, page_size):
    """Page through a query one cursor at a time; returns all rows."""
    rows = []
    cursor = None
    for _ in range(100):
        rs = query.limit(page_size).cursor(cursor).run()
        page = rs.all()
        rows.extend(page)
        cursor = rs.next_cursor
        if cursor is None:
            break
    else:  # pragma: no cover — safety against infinite paging
        pytest.fail("cursor paging did not terminate")
    return rows


class TestPairCursors:
    def test_cursor_round_trip_reassembles(self, db):
        query = db.query(QUERY).from_("Alix").to("Bob")
        full = _edges(query.run())
        for page_size in (1, 2, 3):
            assert _edges(_drain_pages(query, page_size)) == full, page_size

    def test_cursor_portable_across_modes(self, db):
        query = db.query(QUERY).from_("Alix").to("Bob")
        first = query.mode("memoryless").limit(2).run()
        head = _edges(first)
        token = first.next_cursor
        for mode in ("iterative", "recursive", "memoryless"):
            rest = query.mode(mode).cursor(token).run()
            assert head + _edges(rest) == _edges(query.run()), mode

    def test_cursor_accepts_equivalent_encodings(self, db):
        query = db.query(QUERY).from_("Alix").to("Bob")
        first = query.limit(1).run()
        _ = first.all()
        token = first.next_cursor
        as_cursor = _edges(query.cursor(token).run())
        as_dict = _edges(query.cursor(token.to_dict()).run())
        as_edges = _edges(query.cursor(list(token.edges)).run())
        assert as_cursor == as_dict == as_edges

    def test_exhausted_page_has_no_cursor(self, db):
        rs = db.query(QUERY).from_("Alix").to("Bob").limit(100).run()
        assert len(rs.all()) == 4
        assert rs.next_cursor is None

    def test_exact_boundary_page_has_no_cursor(self, db):
        rs = db.query(QUERY).from_("Alix").to("Bob").limit(4).run()
        assert len(rs.all()) == 4
        assert rs.next_cursor is None

    def test_offset_and_skipped(self, db):
        query = db.query(QUERY).from_("Alix").to("Bob")
        full = _edges(query.run())
        rs = query.offset(2).run()
        assert _edges(rs) == full[2:]
        assert rs.skipped == 2

    def test_stale_cursor_length_rejected(self, db):
        # Edge 6 ends at Bob, so the shape check passes — but a
        # 1-edge cursor cannot be an output of a λ=3 enumeration.
        with pytest.raises(QueryError, match="λ"):
            db.query(QUERY).from_("Alix").to("Bob").cursor([6]).run().all()

    def test_unknown_edge_cursor_rejected(self, db):
        with pytest.raises(QueryError, match="cursor"):
            (
                db.query(QUERY).from_("Alix").to("Bob")
                .cursor([999999]).run().all()
            )

    def test_foreign_walk_cursor_rejected(self, db):
        # A real λ-length walk ending at Bob that is not an answer.
        with pytest.raises(QueryError, match="cursor"):
            (
                db.query(QUERY).from_("Alix").to("Bob")
                .mode("iterative").cursor([1, 4, 6]).run().all()
            )

    def test_timeout_returns_partial_resumable_page(self):
        graph, _, s, t = diamond_chain(12, parallel=2)
        database = Database(graph)
        rs = database.query("a*").from_(s).to(t).timeout_ms(0.0).run()
        partial = rs.all()
        assert rs.timed_out
        assert len(partial) < 2 ** 12
        resumed = (
            database.query("a*").from_(s).to(t)
            .cursor(rs.next_cursor).limit(3).run()
        )
        assert len(resumed.all()) == 3 and not resumed.timed_out


class TestBucketedCursors:
    def test_one_to_all_pages_across_buckets(self, db):
        query = db.query(QUERY).from_("Alix").to_all()
        full = [(r.target, r.walk.edges) for r in query.run()]
        for page_size in (1, 3):
            paged = [
                (r.target, r.walk.edges)
                for r in _drain_pages(query, page_size)
            ]
            assert paged == full, page_size

    def test_bucketed_cursor_carries_the_bucket(self, db):
        rs = db.query(QUERY).from_("Alix").to_all().limit(1).run()
        row = rs.all()[0]
        token = rs.next_cursor
        assert isinstance(token, Cursor)
        assert token.target == row.target
        assert token.edges == row.walk.edges

    def test_all_pairs_pages_across_sources(self, db):
        query = db.query("h | s").all_pairs()
        full = [(r.source, r.target, r.walk.edges) for r in query.run()]
        paged = [
            (r.source, r.target, r.walk.edges)
            for r in _drain_pages(query, 2)
        ]
        assert paged == full and len(full) >= 8

    def test_from_any_pages_across_sources(self, db):
        query = db.query("(h | s)").from_any(["Cassie", "Dan"]).to("Eve")
        full = [(r.source, r.walk.edges) for r in query.run()]
        paged = [
            (r.source, r.walk.edges) for r in _drain_pages(query, 1)
        ]
        assert paged == full and len(full) == 3

    def test_pair_cursor_without_bucket_rejected_on_bucketed_query(self, db):
        rs = db.query(QUERY).from_("Alix").to_all().limit(1).run()
        _ = rs.all()
        bare_edges = list(rs.next_cursor.edges)
        with pytest.raises(QueryError, match="cursor"):
            (
                db.query(QUERY).from_("Alix").to_all()
                .cursor(bare_edges).run().all()
            )

    def test_unmatched_bucket_cursor_rejected(self, db):
        with pytest.raises(QueryError, match="cursor"):
            (
                db.query(QUERY).from_("Alix").to_all()
                .cursor({"edges": [0], "target": "Dan", "source": "Bob"})
                .run().all()
            )


class TestResultSetSurface:
    def test_walks_and_to_dicts(self, db):
        rs = db.query(QUERY).from_("Alix").to("Bob").run()
        walks = list(rs.walks())
        assert len(walks) == 4 and all(w.length == 3 for w in walks)
        dicts = db.query(QUERY).from_("Alix").to("Bob").run().to_dicts()
        assert dicts[0]["source"] == "Alix"
        assert dicts[0]["target"] == "Bob"
        assert dicts[0]["length"] == 3 and dicts[0]["lam"] == 3

    def test_first_and_is_empty(self, db):
        rs = db.query(QUERY).from_("Alix").to("Bob").run()
        assert rs.first() is not None
        empty = db.query("h").from_("Bob").to("Alix").run()
        assert empty.is_empty and empty.first() is None

    def test_single_use_iteration(self, db):
        rs = db.query(QUERY).from_("Alix").to("Bob").run()
        assert len(list(rs)) == 4
        assert list(rs) == []  # Exhausted, not restarted.

    def test_enumerate_timing_accrues(self, db):
        rs = db.query(QUERY).from_("Alix").to("Bob").run()
        _ = rs.all()
        assert rs.stats["timings"]["enumerate"] >= 0.0
