"""The semantics axis of the façade: trails / simple / any-walk.

Covers what the differential matrix (``tests/property``) does not:

* builder **copy-on-write** across the new restriction axis and its
  validation rules (``cheapest`` × restriction, ``count(method='dp')``);
* **cache-key isolation** — the same regex under different semantics
  occupies distinct plan *and* annotation cache entries, so a cached
  plan can never serve a different semantics;
* **pagination and timeout-resume cursors** under trails/simple, in
  both execution regimes — including the crafted fallback instance
  (shortest trail strictly longer than the shortest walk, where
  length-λ filtering is unsound and the guided product-DFS takes over);
* the **ε fast path** — since the packed fold, ε-queries run through
  the packed Annotate; its output must be indistinguishable from
  ``annotate_reference`` on ε-instances (λ, L, B, ``target_info``).
"""

import random

import pytest

from repro.api import Database
from repro.baselines.oracle import (
    oracle_restricted_set,
    random_graph,
    random_regex,
)
from repro.core.annotate import annotate, annotate_reference
from repro.core.compile import compile_query
from repro.exceptions import QueryError
from repro.graph.builder import GraphBuilder
from repro.query import rpq
from repro.workloads.fraud import example9_graph

QUERY = "h* s (h | s)*"


@pytest.fixture
def db():
    return Database(example9_graph())


def _drain_pages(query, page_size):
    rows = []
    cursor = None
    for _ in range(100):
        rs = query.limit(page_size).cursor(cursor).run()
        rows.extend(rs.all())
        cursor = rs.next_cursor
        if cursor is None:
            break
    else:  # pragma: no cover — safety against infinite paging
        pytest.fail("cursor paging did not terminate")
    return rows


def fallback_graph():
    """Walk λ = 3 from v0 to v1, but every length-3 walk repeats the
    v0 ↔ v1 2-cycle — the shortest trail/simple path has 5 edges, and
    there are two of them (two parallel 5-chains)."""
    b = GraphBuilder()
    b.add_vertices([f"v{i}" for i in range(10)])
    b.add_edge("v0", "v1", ["a"])  # e0: the 2-cycle …
    b.add_edge("v1", "v0", ["a"])  # e1
    for lo in (2, 6):  # … and two disjoint 5-chains v0 → … → v1.
        prev = "v0"
        for v in (f"v{lo}", f"v{lo + 1}", f"v{lo + 2}", f"v{lo + 3}"):
            b.add_edge(prev, v, ["a"])
            prev = v
        b.add_edge(prev, "v1", ["a"])
    return b.build()


FALLBACK_REGEX = "(a a a) (a a)?"  # Accepts lengths 3 and 5 only.


class TestBuilderAxis:
    def test_copy_on_write(self, db):
        base = db.query(QUERY).from_("Alix").to("Bob")
        trails = base.trails()
        simple = base.simple_paths()
        anyw = base.any_walk()
        # Forks carry their restriction; the base stays on walks.
        assert base._restriction == "walks"
        assert trails._restriction == "trails"
        assert simple._restriction == "simple"
        assert anyw._restriction == "any"
        assert base.run().lam == 3 and len(base.run().all()) == 4
        assert len(anyw.run().all()) == 1
        # walks() forks back off a restricted query.
        assert trails.walks()._restriction == "walks"

    def test_semantics_selects_either_sub_axis(self, db):
        q = db.query(QUERY).from_("Alix").to("Bob")
        assert q.semantics("trails")._restriction == "trails"
        assert q.semantics("any")._restriction == "any"
        assert q.semantics("cheapest")._semantics == "cheapest"
        assert q.semantics("shortest")._semantics == "shortest"
        with pytest.raises(QueryError, match="semantics"):
            q.semantics("shortest-trails")

    def test_repr_shows_restriction(self, db):
        assert "restriction='trails'" in repr(
            db.query(QUERY).from_("Alix").trails()
        )

    def test_cheapest_rejects_restrictions(self, db):
        for restricted in ("trails", "simple", "any"):
            q = (
                db.query(QUERY).from_("Alix").to("Bob")
                .cheapest().semantics(restricted)
            )
            with pytest.raises(QueryError, match="cheapest"):
                q.run()

    def test_dp_count_is_walks_only(self, db):
        q = db.query(QUERY).from_("Alix").to("Bob")
        assert q.count(method="dp") == 4
        for restricted in ("trails", "simple", "any"):
            with pytest.raises(QueryError, match="dp"):
                q.semantics(restricted).count(method="dp")
            # Enumerated counting works under every semantics.
            assert q.semantics(restricted).count() == len(
                q.semantics(restricted).run().all()
            )


class TestCacheKeyIsolation:
    def test_distinct_entries_per_semantics(self):
        db = Database(example9_graph())
        pair = db.query(QUERY).from_("Alix").to("Bob")
        pair.run()
        pair.trails().run()
        pair.simple_paths().run()
        pair.any_walk().run()
        # One plan entry per semantics; any-walk bypasses the
        # annotation cache entirely (BFS per request).
        assert len(db._plan_cache) == 4
        assert len(db._annotation_cache) == 3
        restrictions = sorted(key[-1] for key in db._plan_cache._data)
        assert restrictions == ["any", "simple", "trails", "walks"]

    def test_repeat_restricted_query_hits_both_caches(self, db):
        query = db.query(QUERY).from_("Alix").to("Bob").trails()
        query.run()
        stats = query.run().stats
        assert stats["cached"] == {"plan": True, "annotation": True}

    def test_restricted_results_not_served_across_semantics(self):
        graph = fallback_graph()
        db = Database(graph)
        pair = db.query(FALLBACK_REGEX).from_("v0").to("v1")
        assert pair.run().lam == 3
        for kind in ("trails", "simple"):
            rs = pair.semantics(kind).run()
            assert rs.lam == 5, kind
        # And back: the walks entry was not clobbered.
        assert pair.run().lam == 3


class TestRestrictedPagination:
    def test_filter_regime_pages(self, db):
        for kind in ("trails", "simple"):
            query = db.query(QUERY).from_("Alix").to("Bob").semantics(kind)
            full = [r.walk.edges for r in query.run()]
            assert len(full) == 4  # Every λ-walk of example9 is simple.
            for size in (1, 2, 3):
                paged = [
                    r.walk.edges for r in _drain_pages(query, size)
                ]
                assert paged == full, (kind, size)

    def test_fallback_regime_pages(self):
        graph = fallback_graph()
        db = Database(graph)
        for kind in ("trails", "simple"):
            query = (
                db.query(FALLBACK_REGEX).from_("v0").to("v1")
                .semantics(kind)
            )
            rs = query.run()
            full = [r.walk.edges for r in rs]
            assert rs.lam == 5 and len(full) == 2, kind
            assert [r.walk.edges for r in _drain_pages(query, 1)] == full
            # The oracle agrees on both rλ and the answer set.
            rlam, rset = oracle_restricted_set(
                graph, rpq(FALLBACK_REGEX).automaton, 0, 1, kind
            )
            assert (rlam, sorted(full)) == (5, rset), kind

    def test_fallback_pages_on_cold_database(self):
        # annotation_cache_size=0 routes pairs through the cold
        # single-pair engine; the restricted probe and fallback stream
        # must work there too.
        db = Database(fallback_graph(), annotation_cache_size=0)
        query = (
            db.query(FALLBACK_REGEX).from_("v0").to("v1").trails()
        )
        full = [r.walk.edges for r in query.run()]
        assert len(full) == 2
        assert [r.walk.edges for r in _drain_pages(query, 1)] == full

    def test_bucketed_restricted_pages(self, db):
        query = db.query(QUERY).from_("Alix").to_all().trails()
        full = [(r.target, r.walk.edges) for r in query.run()]
        assert full  # Non-degenerate.
        for size in (1, 3):
            paged = [
                (r.target, r.walk.edges)
                for r in _drain_pages(query, size)
            ]
            assert paged == full, size

    def test_any_walk_bucketed_pages(self, db):
        query = db.query(QUERY).from_("Alix").to_all().any_walk()
        full = [(r.target, r.walk.edges) for r in query.run()]
        assert len(full) == len({t for t, _ in full})  # One per target.
        paged = [
            (r.target, r.walk.edges) for r in _drain_pages(query, 1)
        ]
        assert paged == full

    def test_timeout_resume_under_trails(self):
        graph = fallback_graph()
        db = Database(graph)
        query = (
            db.query(FALLBACK_REGEX).from_("v0").to("v1").trails()
        )
        full = [r.walk.edges for r in query.run()]
        rs = query.timeout_ms(0.0).run()
        partial = [r.walk.edges for r in rs]
        assert rs.timed_out and len(partial) < len(full)
        # Wherever the budget cut, resuming from the partial page's
        # cursor covers exactly the remainder, in order.
        resumed = [
            r.walk.edges for r in query.cursor(rs.next_cursor).run()
        ]
        assert partial + resumed == full

    def test_stale_cursor_rejected_across_semantics(self):
        graph = fallback_graph()
        db = Database(graph)
        pair = db.query(FALLBACK_REGEX).from_("v0").to("v1")
        [walks_row] = pair.run().all()
        token = walks_row.walk.edges
        assert len(token) == 3
        # A walks cursor (λ=3) is budget-invalid under trails (rλ=5).
        with pytest.raises(QueryError, match="cursor"):
            pair.trails().cursor(token).run().all()


class TestEpsilonFastPath:
    def test_packed_epsilon_matches_reference(self):
        """ε-queries now run the packed Annotate; its λ, L, B and
        ``target_info`` must be bit-identical to the retained
        ``annotate_reference`` on random ε-instances."""
        checked = 0
        for seed in range(120):
            rng = random.Random(90_000 + seed)
            graph = random_graph(rng)
            nfa = rpq(random_regex(rng)).automaton
            if not nfa.has_epsilon:
                continue
            cq = compile_query(graph, nfa, eliminate_epsilon=False)
            if not cq.has_eps:
                continue
            source = rng.randrange(graph.vertex_count)
            for target in (rng.randrange(graph.vertex_count), None):
                packed = annotate(cq, source, target)
                ref = annotate_reference(cq, source, target)
                assert packed.packed is not None  # The fast path ran…
                assert ref.packed is None  # … against the map form.
                assert packed.lam == ref.lam, seed
                assert packed.target_states == ref.target_states, seed
                assert packed.L == ref.L, seed
                assert packed.B == ref.B, seed
                for v in graph.vertices():
                    assert packed.target_info(v) == ref.target_info(v)
            checked += 1
        assert checked >= 20  # The probe range must hit ε-instances.

    def test_facade_epsilon_queries_across_semantics(self):
        """End-to-end: an ε-heavy regex through every semantics mode
        (the packed ε Annotate feeds the trails/simple filter and the
        walks enumeration; any-walk has its own ε handling)."""
        expression = "(h)* (s)? (h | s)*"
        assert rpq(expression).automaton.has_epsilon
        db = Database(example9_graph())
        base = db.query(expression).from_("Alix").to("Bob")
        rs = base.run()
        walks = [r.walk.edges for r in rs]
        assert rs.lam is not None and walks
        for kind in ("trails", "simple"):
            restricted = [
                r.walk.edges for r in base.semantics(kind).run()
            ]
            # Every λ-walk of this instance is simple, so the filter
            # regime passes them all through in enumeration order.
            assert restricted == walks, kind
        anyw = base.any_walk().run().all()
        assert len(anyw) == 1 and len(anyw[0].walk.edges) == rs.lam
