"""Unit tests for the fluent :class:`repro.api.Query` builder."""

import pytest

from repro.api import Database
from repro.core.cheapest import DistinctCheapestWalks
from repro.core.engine import DistinctShortestWalks
from repro.exceptions import QueryError
from repro.graph.builder import GraphBuilder
from repro.query import rpq
from repro.workloads.fraud import example9_graph

QUERY = "h* s (h | s)*"


@pytest.fixture
def graph():
    return example9_graph()


@pytest.fixture
def db(graph):
    return Database(graph)


def _engine_edges(graph, expression, source, target):
    engine = DistinctShortestWalks(
        graph, rpq(expression).automaton, source, target, mode="iterative"
    )
    return [w.edges for w in engine.enumerate()]


class TestBuilderSemantics:
    def test_copy_on_write_forking(self, db):
        base = db.query(QUERY).from_("Alix")
        pair = base.to("Bob")
        fan = base.to_all()
        assert pair.run().lam == 3
        assert len(fan.run().all()) == 8
        # The fork did not mutate the base.
        with pytest.raises(QueryError, match="needs to"):
            base.run()

    def test_shape_conflicts_rejected(self, db):
        q = db.query(QUERY)
        with pytest.raises(QueryError):
            q.from_("Alix").from_any(["Dan"])
        with pytest.raises(QueryError):
            q.from_any(["Dan"]).from_("Alix")
        with pytest.raises(QueryError):
            q.to("Bob").to_all()
        with pytest.raises(QueryError):
            q.from_("Alix").all_pairs()
        with pytest.raises(QueryError):
            q.from_any([])

    def test_knob_validation(self, db):
        q = db.query(QUERY)
        with pytest.raises(QueryError):
            q.mode("warp")
        with pytest.raises(QueryError):
            q.construction("brzozowski")
        with pytest.raises(QueryError):
            q.limit(0)
        with pytest.raises(QueryError):
            q.offset(-1)
        with pytest.raises(QueryError):
            q.timeout_ms(-5)
        with pytest.raises(QueryError):
            q.cursor("nope")
        with pytest.raises(QueryError):
            q.semantics("fastest")

    def test_repr_mentions_shape(self, db):
        assert "pair" in repr(db.query(QUERY).from_("Alix").to("Bob"))
        assert "unshaped" in repr(db.query(QUERY))


class TestModesAndSemantics:
    def test_every_shortest_mode_agrees(self, db, graph):
        expected = _engine_edges(graph, QUERY, "Alix", "Bob")
        for mode in ("auto", "iterative", "recursive", "memoryless"):
            rows = db.query(QUERY).from_("Alix").to("Bob").mode(mode).run()
            assert [r.walk.edges for r in rows] == expected, mode

    def test_cheapest_matches_engine(self):
        b = GraphBuilder()
        b.add_edge("s", "m", ["a"], cost=1)
        b.add_edge("m", "t", ["a"], cost=1)
        b.add_edge("s", "t", ["a"], cost=2)
        b.add_edge("s", "t", ["a"], cost=9)
        graph = b.build()
        engine = DistinctCheapestWalks(
            graph, rpq("a+").automaton, "s", "t"
        )
        expected = sorted(w.edges for w in engine.enumerate())
        for mode in ("auto", "iterative", "memoryless"):
            rows = (
                Database(graph).query("a+").cheapest()
                .from_("s").to("t").mode(mode).run()
            )
            assert sorted(r.walk.edges for r in rows) == expected, mode
            assert all(r.cost == 2 for r in rows), mode

    def test_cheapest_rejects_recursive(self, db):
        with pytest.raises(QueryError, match="recursive"):
            db.query(QUERY).cheapest().from_("Alix").to("Bob").mode(
                "recursive"
            ).run()

    def test_multiplicity_rows(self, db):
        rows = (
            db.query(QUERY).from_("Alix").to("Bob")
            .with_multiplicity().run().all()
        )
        assert sorted(r.multiplicity for r in rows) == [1, 2, 2, 3]

    def test_plain_rows_have_no_multiplicity(self, db):
        rows = db.query(QUERY).from_("Alix").to("Bob").run().all()
        assert all(r.multiplicity is None for r in rows)

    def test_count_methods_agree(self, db):
        pair = db.query(QUERY).from_("Alix").to("Bob")
        assert pair.count() == pair.count(method="dp") == 4
        fan = db.query(QUERY).from_("Alix").to_all()
        assert fan.count() == fan.count(method="dp") == 8
        everything = db.query("h").all_pairs()
        assert everything.count() == everything.count(method="dp") == 6
        with pytest.raises(QueryError, match="count method"):
            pair.count(method="guess")

    def test_count_ignores_pagination(self, db):
        assert db.query(QUERY).from_("Alix").to("Bob").limit(1).count() == 4


class TestShapes:
    def test_pair_rows_carry_names_and_lam(self, db):
        rows = db.query(QUERY).from_("Alix").to("Bob").run().all()
        assert {(r.source, r.target, r.lam) for r in rows} == {
            ("Alix", "Bob", 3)
        }
        assert all(r.length == 3 for r in rows)

    def test_one_to_all_matches_per_target_engines(self, db, graph):
        rows = db.query(QUERY).from_("Alix").to_all().run().all()
        by_target = {}
        for row in rows:
            by_target.setdefault(row.target, []).append(row.walk.edges)
        assert set(by_target) == {"Bob", "Cassie", "Dan", "Eve"}
        for target, edges in by_target.items():
            assert edges == _engine_edges(graph, QUERY, "Alix", target)

    def test_targets_terminal(self, db):
        fan = db.query(QUERY).from_("Alix").to_all()
        assert dict(fan.targets()) == {
            "Bob": 3, "Cassie": 2, "Dan": 1, "Eve": 2,
        }
        with pytest.raises(QueryError, match="to_all"):
            db.query(QUERY).from_("Alix").to("Bob").targets()

    def test_from_any_super_source_minimum(self, db):
        # Alix→Bob has λ=3 but Dan→Bob has λ=2: only Dan's walks win.
        rows = (
            db.query(QUERY).from_any(["Alix", "Dan"]).to("Bob").run()
        )
        materialized = rows.all()
        assert rows.lam == 2
        assert {r.source for r in materialized} == {"Dan"}
        assert all(r.length == 2 for r in materialized)

    def test_from_any_tie_keeps_caller_order(self, db):
        rows = (
            db.query("(h | s)").from_any(["Cassie", "Dan"]).to("Eve")
            .run().all()
        )
        # Both sources reach Eve in one hop — caller order, then the
        # per-bucket DFS order.
        assert [r.source for r in rows] == [
            "Cassie", "Cassie", "Dan",
        ]

    def test_from_any_duplicates_are_deduped(self, db):
        once = db.query(QUERY).from_any(["Dan"]).to("Bob").run().all()
        twice = (
            db.query(QUERY).from_any(["Dan", "Dan"]).to("Bob").run().all()
        )
        assert [r.walk.edges for r in twice] == [r.walk.edges for r in once]

    def test_all_pairs_covers_every_reachable_pair(self, db, graph):
        rows = db.query("h").all_pairs().run().all()
        got = {(r.source, r.target): r.walk.edges for r in rows}
        assert len(got) == 6  # Six single-h edges in Figure 1.
        for (source, target), edges in got.items():
            assert [edges] == _engine_edges(graph, "h", source, target)

    def test_empty_results(self, db):
        assert db.query("h").from_("Bob").to("Alix").run().all() == []
        assert db.query("h").from_("Bob").to("Alix").run().lam is None
        assert db.query("h").from_("Bob").to_all().run().all() == []
        assert (
            db.query("h").from_any(["Bob"]).to("Alix").run().lam is None
        )

    def test_lambda_zero_pair(self, db):
        rows = db.query("h*").from_("Alix").to("Alix").run()
        materialized = rows.all()
        assert rows.lam == 0
        assert [r.walk.edges for r in materialized] == [()]


class TestExplainAndStats:
    def test_explain_mentions_facade_routing(self, db):
        plan = db.query(QUERY).from_("Alix").to("Bob").explain()
        text = plan.explain()
        assert "façade" in text and "'pair'" in text
        assert "memoryless" in text

    def test_explain_cold_fast_path(self):
        b = GraphBuilder()
        b.add_edge("a", "b", ["x"])
        cold = Database(b.build(), annotation_cache_size=0)
        plan = (
            cold.query("x", ).from_("a").to("b").explain()
        )
        assert "cold single-pair engine" in plan.explain()

    def test_stats_terminal(self, db):
        stats = db.query(QUERY).from_("Alix").to("Bob").stats()
        assert stats["rows"] == 4 and stats["lam"] == 3
        assert "annotate" in stats["timings"]
        assert "enumerate" in stats["timings"]
        assert set(stats["cached"]) == {"plan", "annotation"}

    def test_rpq_object_queries_skip_reparse(self, db):
        compiled = rpq(QUERY)
        rows = db.query(compiled).from_("Alix").to("Bob").run().all()
        assert len(rows) == 4
        with pytest.raises(QueryError, match="glushkov"):
            db.query(compiled).construction("glushkov")
