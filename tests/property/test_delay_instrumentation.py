"""Step-counted delay validation on the adversarial workload families.

``tests/properties/test_delay_bound.py`` counts queue operations on the
classic instances (diamond chains, duplicate bombs, high in-degree);
here the same Theorem 2 bound — work between two consecutive outputs is
O(λ·|A|) — is enforced on the *label-heavy* adversaries from
:mod:`repro.workloads.worstcase` (``label_soup``, ``decoy_indegree``):
instances engineered so that per-edge label multiplicity and decoy
in-edges would blow up the delay of any implementation that leaks
preprocessing-phase costs into the enumeration phase.

Two instrumentation layers:

* the eager :func:`~repro.core.enumerate.enumerate_walks`, stepped via
  counting proxies around every ``C_u[p]`` queue (peek/advance/restart
  each count as one step);
* the memoryless :func:`~repro.core.memoryless.enumerate_memoryless`
  (Theorem 18 — the mode the query service defaults to), stepped via
  counting proxies around every ``ResumableIndex``
  (first/seek/after/payload each count as one step).

Both are held to ``C · λ · (|Q| + 1)`` steps between outputs, with one
shared small constant and no dependence on label counts, in-degrees,
or the number of decoy edges.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

import pytest

from repro.core.annotate import annotate
from repro.core.compile import compile_query
from repro.core.enumerate import enumerate_walks
from repro.core.memoryless import enumerate_memoryless
from repro.core.trim import ResumableAnnotation, resumable_trim, trim
from repro.core.walks import Walk
from repro.datastructures.restartable_queue import RestartableQueue
from repro.workloads.worstcase import decoy_indegree, label_soup

#: Steps allowed between consecutive outputs per unit of λ·(|Q|+1) —
#: same constant as the classic delay-bound suite.
_CONSTANT = 12


class _CountingQueue(RestartableQueue):
    """Queue proxy reporting every cursor operation into a shared cell."""

    __slots__ = ("_counter",)

    def __init__(self, queue: RestartableQueue, counter: Dict[str, int]) -> None:
        super().__init__(list(queue))
        self._counter = counter

    def peek(self):
        self._counter["steps"] += 1
        return super().peek()

    def advance(self) -> None:
        self._counter["steps"] += 1
        super().advance()

    def restart(self) -> None:
        self._counter["steps"] += 1
        super().restart()


class _CountingIndex:
    """ResumableIndex proxy counting every O(1) query."""

    __slots__ = ("_inner", "_counter")

    def __init__(self, inner, counter: Dict[str, int]) -> None:
        self._inner = inner
        self._counter = counter

    def first(self):
        self._counter["steps"] += 1
        return self._inner.first()

    def seek(self, i):
        self._counter["steps"] += 1
        return self._inner.seek(i)

    def after(self, i):
        self._counter["steps"] += 1
        return self._inner.after(i)

    def payload(self, i):
        self._counter["steps"] += 1
        return self._inner.payload(i)

    def __len__(self):
        return len(self._inner)


def _max_steps_between_outputs(
    walks: Iterator[Walk], counter: Dict[str, int]
) -> Tuple[int, int]:
    """(max steps between consecutive outputs, number of outputs)."""
    max_gap = 0
    outputs = 0
    last = 0
    for _ in walks:
        outputs += 1
        max_gap = max(max_gap, counter["steps"] - last)
        last = counter["steps"]
    # Termination work after the final output counts as a gap too.
    max_gap = max(max_gap, counter["steps"] - last)
    return max_gap, outputs


def _measure_eager(graph, nfa, source_name, target_name):
    s, t = graph.vertex_id(source_name), graph.vertex_id(target_name)
    cq = compile_query(graph, nfa)
    ann = annotate(cq, s, t)
    trimmed = trim(graph, ann)
    counter = {"steps": 0}
    for per_vertex in trimmed.queues:
        for state in list(per_vertex):
            per_vertex[state] = _CountingQueue(per_vertex[state], counter)
    walks = enumerate_walks(graph, trimmed, ann.lam, t, ann.target_states)
    max_gap, outputs = _max_steps_between_outputs(walks, counter)
    return ann.lam, cq.n_states, max_gap, outputs


def _measure_memoryless(graph, nfa, source_name, target_name):
    s, t = graph.vertex_id(source_name), graph.vertex_id(target_name)
    cq = compile_query(graph, nfa)
    ann = annotate(cq, s, t)
    counter = {"steps": 0}
    resumable = resumable_trim(graph, ann)
    counted = ResumableAnnotation(
        [
            {p: _CountingIndex(idx, counter) for p, idx in per_vertex.items()}
            for per_vertex in resumable.index
        ]
    )
    walks = enumerate_memoryless(
        graph, counted, ann.lam, t, ann.target_states
    )
    max_gap, outputs = _max_steps_between_outputs(walks, counter)
    return ann.lam, cq.n_states, max_gap, outputs


_MEASURES = {"eager": _measure_eager, "memoryless": _measure_memoryless}


@pytest.mark.parametrize("flavor", sorted(_MEASURES))
class TestLabelHeavyDelay:
    def test_label_soup(self, flavor):
        """Per-edge label multiplicity must not leak into the delay."""
        graph, nfa, s, t = label_soup(
            k=9, parallel=2, extra_labels=24, noise_out=12
        )
        lam, n_states, max_gap, outputs = _MEASURES[flavor](graph, nfa, s, t)
        assert outputs == 2 ** 9
        assert max_gap <= _CONSTANT * lam * (n_states + 1)

    def test_label_soup_delay_independent_of_label_count(self, flavor):
        """Doubling the noise labels leaves the per-output step count
        unchanged — the bound is not merely loose enough to absorb it."""
        gaps = []
        for extra in (8, 32):
            graph, nfa, s, t = label_soup(
                k=7, parallel=2, extra_labels=extra, noise_out=8
            )
            _, _, max_gap, outputs = _MEASURES[flavor](graph, nfa, s, t)
            assert outputs == 2 ** 7
            gaps.append(max_gap)
        assert gaps[0] == gaps[1]

    def test_decoy_indegree(self, flavor):
        """Decoy in-edges occupy the low TgtIdx cells; the trimmed
        structures skip them wholesale (the factor-d separation of
        Section 3.2)."""
        graph, nfa, s, t = decoy_indegree(k=8, parallel=2, decoys=64)
        lam, n_states, max_gap, outputs = _MEASURES[flavor](graph, nfa, s, t)
        assert outputs == 2 ** 8
        assert max_gap <= _CONSTANT * lam * (n_states + 1)

    def test_decoy_indegree_delay_independent_of_decoys(self, flavor):
        gaps = []
        for decoys in (4, 256):
            graph, nfa, s, t = decoy_indegree(k=6, parallel=2, decoys=decoys)
            _, _, max_gap, outputs = _MEASURES[flavor](graph, nfa, s, t)
            assert outputs == 2 ** 6
            gaps.append(max_gap)
        assert gaps[0] == gaps[1]
