"""Randomized differential testing: four engine modes vs the oracle.

Each case draws a random (graph, regex, source, target) instance from a
*seeded* PRNG — no hypothesis shrinking, no example database: the same
seed always produces the same instance, which is what lets CI run a
fixed seed matrix (see ``.github/workflows/ci.yml``) and lets a failure
be replayed locally with::

    DIFF_SEED_BASE=<base> PYTHONPATH=src python -m pytest \
        "tests/property/test_differential.py::test_modes_agree[<case>]"

Per case, every engine mode (``iterative``, ``recursive``,
``memoryless``, ``auto``) is checked against the brute-force oracle
(:mod:`repro.baselines.oracle` — machinery disjoint from the core
algorithm) for

* **distinctness** — no walk is emitted twice;
* **shortestness** — every output has length λ (= the oracle's λ);
* **completeness** — the output *set* is exactly the oracle's answer
  set;

and the modes are checked against *each other* on output order:
``iterative``, ``recursive`` and ``memoryless`` are guaranteed by the
paper to produce the same DFS order (children by increasing
``TgtIdx``), and ``auto`` joins them whenever it dispatches to the
general engine (the simple-setting fast path may reorder).

The number of cases and the seed base are environment knobs
(``DIFF_CASES``, default 200; ``DIFF_SEED_BASE``, default 0) so the CI
matrix can cover disjoint seed ranges without code changes.
"""

from __future__ import annotations

import os
import random
from typing import List, Tuple

import pytest

from repro.baselines.oracle import oracle_answer_set, oracle_lam
from repro.core.engine import DistinctShortestWalks
from repro.graph.builder import GraphBuilder
from repro.graph.database import Graph
from repro.query import rpq

_ALPHABET = ("a", "b", "c")
_MODES = ("iterative", "recursive", "memoryless", "auto")

SEED_BASE = int(os.environ.get("DIFF_SEED_BASE", "0"))
N_CASES = int(os.environ.get("DIFF_CASES", "200"))

#: Instances whose λ exceeds this are skipped: the oracle's exhaustive
#: length-λ DFS is exponential in λ.  Random 6-vertex graphs rarely
#: have deep shortest walks, so the skip budget stays tiny (asserted
#: by :func:`test_skip_budget_not_exhausted`).
_MAX_ORACLE_LAM = 10
_ORACLE_WALK_BUDGET = 60_000

_skips: List[int] = []
_runs: List[int] = []


def _random_graph(rng: random.Random) -> Graph:
    n = rng.randint(1, 6)
    m = rng.randint(0, 12)
    builder = GraphBuilder()
    builder.add_vertices([f"v{i}" for i in range(n)])
    for _ in range(m):
        src = rng.randrange(n)
        tgt = rng.randrange(n)
        labels = rng.sample(_ALPHABET, rng.randint(1, len(_ALPHABET)))
        builder.add_edge(f"v{src}", f"v{tgt}", sorted(labels))
    return builder.build()


def _random_regex(rng: random.Random, depth: int = 3) -> str:
    if depth == 0:
        return rng.choice(_ALPHABET)
    roll = rng.random()
    if roll < 0.25:
        return rng.choice(_ALPHABET)
    if roll < 0.45:
        return f"({_random_regex(rng, depth - 1)} {_random_regex(rng, depth - 1)})"
    if roll < 0.65:
        return f"({_random_regex(rng, depth - 1)} | {_random_regex(rng, depth - 1)})"
    if roll < 0.80:
        return f"({_random_regex(rng, depth - 1)})*"
    if roll < 0.90:
        return f"({_random_regex(rng, depth - 1)})+"
    return f"({_random_regex(rng, depth - 1)})?"


def _draw_case(seed: int):
    rng = random.Random(seed)
    graph = _random_graph(rng)
    expression = _random_regex(rng)
    source = rng.randrange(graph.vertex_count)
    target = rng.randrange(graph.vertex_count)
    return graph, expression, source, target


@pytest.mark.parametrize("case", range(N_CASES))
def test_modes_agree(case: int) -> None:
    seed = SEED_BASE + case
    graph, expression, source, target = _draw_case(seed)
    nfa = rpq(expression).automaton
    context = (
        f"seed={seed} |V|={graph.vertex_count} |E|={graph.edge_count} "
        f"regex={expression!r} s={source} t={target}"
    )

    lam = oracle_lam(graph, nfa, source, target)
    if lam is not None and lam > _MAX_ORACLE_LAM:
        _skips.append(seed)
        pytest.skip(f"λ={lam} beyond the oracle budget ({context})")
    try:
        expected = oracle_answer_set(
            graph, nfa, source, target, max_walks=_ORACLE_WALK_BUDGET
        )
    except RuntimeError:
        _skips.append(seed)
        pytest.skip(f"oracle walk budget exhausted ({context})")
    _runs.append(seed)

    outputs = {}
    for mode in _MODES:
        engine = DistinctShortestWalks(graph, nfa, source, target, mode=mode)
        walks = list(engine.enumerate())
        edges: List[Tuple[int, ...]] = [w.edges for w in walks]

        # λ agreement with the oracle.
        assert engine.lam == lam, f"{mode} λ mismatch ({context})"
        # Distinctness: each answer exactly once.
        assert len(set(edges)) == len(edges), (
            f"{mode} emitted duplicates ({context})"
        )
        # Shortestness: every output has length λ.
        assert all(len(e) == (lam or 0) for e in edges), (
            f"{mode} emitted a non-shortest walk ({context})"
        )
        # Completeness + soundness: exact answer-set equality.
        assert sorted(edges) == expected, (
            f"{mode} answer set differs from the oracle ({context})"
        )
        # Walk endpoints are the queried pair.
        for walk in walks:
            assert walk.src == source and walk.tgt == target, (
                f"{mode} walk has wrong endpoints ({context})"
            )
        outputs[mode] = edges

    # Output-order agreement where the paper guarantees it: the three
    # general modes share the DFS order…
    assert outputs["iterative"] == outputs["recursive"], context
    assert outputs["iterative"] == outputs["memoryless"], context
    # …and "auto" joins them unless the fast path (different traversal
    # order, same set — already checked above) was selected.
    auto_engine = DistinctShortestWalks(
        graph, nfa, source, target, mode="auto"
    )
    if not auto_engine.uses_fast_path:
        assert outputs["auto"] == outputs["iterative"], context


def test_skip_budget_not_exhausted() -> None:
    """The harness must actually exercise (almost) all of its cases.

    Runs after the parametrized cases (pytest keeps file order); if
    some future change to the generators made most instances skip, the
    differential coverage would silently evaporate — fail instead.
    """
    total = len(_runs) + len(_skips)
    if total == 0:
        pytest.skip("differential cases did not run (filtered out?)")
    assert len(_runs) >= 0.9 * total, (
        f"only {len(_runs)}/{total} differential cases ran; "
        f"skipped seeds: {_skips[:10]}"
    )
