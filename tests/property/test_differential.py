"""Randomized differential testing: engine modes + façade vs the oracle.

Each case draws a random (graph, regex, source, target) instance from a
*seeded* PRNG — no hypothesis shrinking, no example database: the same
seed always produces the same instance, which is what lets CI run a
fixed seed matrix (see ``.github/workflows/ci.yml``) and lets a failure
be replayed locally with::

    DIFF_SEED_BASE=<base> PYTHONPATH=src python -m pytest \
        "tests/property/test_differential.py::test_modes_agree[<case>]"

Per case, every engine mode (``iterative``, ``recursive``,
``memoryless``, ``auto``) is checked against the brute-force oracle
(:mod:`repro.baselines.oracle` — machinery disjoint from the core
algorithm) for

* **distinctness** — no walk is emitted twice;
* **shortestness** — every output has length λ (= the oracle's λ);
* **completeness** — the output *set* is exactly the oracle's answer
  set;

and the modes are checked against *each other* on output order:
``iterative``, ``recursive`` and ``memoryless`` are guaranteed by the
paper to produce the same DFS order (children by increasing
``TgtIdx``), and ``auto`` joins them whenever it dispatches to the
general engine (the simple-setting fast path may reorder).

Since the packed-pipeline refactor the engine modes all execute over
the CSR-packed annotation arrays; every case therefore also replays
through the retained *mapping-form* pipeline (``annotate_reference`` →
dict ``Trim`` → queue-object DFS) and must match it in λ **and**
output order — the packed layout is checked to be behaviorally
invisible on every random instance.

On top of the four engine modes, every case runs once more through
the ``repro.api`` **façade** (``Database(graph).query(...)``) — the
path the service, the ``RPQ`` helpers and the CLI all share now — and
a second identical façade query must report plan + annotation cache
hits.  Separate (smaller) case sets check the façade's *new* endpoint
shapes against the same brute-force oracle: ``all_pairs()`` per pair,
and ``from_any([...])`` against the min-λ union over the per-source
oracle answer sets (the virtual super-source semantics).

The number of cases and the seed base are environment knobs
(``DIFF_CASES``, default 200; ``DIFF_FACADE_CASES``, default 40;
``DIFF_SEED_BASE``, default 0) so the CI matrix can cover disjoint
seed ranges without code changes.
"""

from __future__ import annotations

import os
import random
from typing import List, Tuple

import pytest

from repro.api import Database
from repro.baselines.oracle import (
    oracle_answer_set,
    oracle_lam,
    oracle_restricted_set,
    oracle_walk_matches,
    random_graph,
    random_regex,
)
from repro.core.annotate import annotate_reference
from repro.core.compile import compile_query
from repro.core.engine import DistinctShortestWalks
from repro.core.enumerate import enumerate_walks
from repro.core.restricted import restriction_predicate
from repro.core.trim import trim
from repro.query import rpq

_MODES = ("iterative", "recursive", "memoryless", "auto")

SEED_BASE = int(os.environ.get("DIFF_SEED_BASE", "0"))
N_CASES = int(os.environ.get("DIFF_CASES", "200"))
N_FACADE_CASES = int(os.environ.get("DIFF_FACADE_CASES", "40"))

#: Instances whose λ exceeds this are skipped: the oracle's exhaustive
#: length-λ DFS is exponential in λ.  Random 6-vertex graphs rarely
#: have deep shortest walks, so the skip budget stays tiny (asserted
#: by :func:`test_skip_budget_not_exhausted`).
_MAX_ORACLE_LAM = 10
_ORACLE_WALK_BUDGET = 60_000

_skips: List[int] = []
_runs: List[int] = []


def _draw_case(seed: int):
    # Generators live in repro.baselines.oracle now (previously
    # copy-pasted per harness); the draw sequence is unchanged, so
    # historical seeds replay the same instances.
    rng = random.Random(seed)
    graph = random_graph(rng)
    expression = random_regex(rng)
    source = rng.randrange(graph.vertex_count)
    target = rng.randrange(graph.vertex_count)
    return graph, expression, source, target


@pytest.mark.parametrize("case", range(N_CASES))
def test_modes_agree(case: int) -> None:
    seed = SEED_BASE + case
    graph, expression, source, target = _draw_case(seed)
    nfa = rpq(expression).automaton
    context = (
        f"seed={seed} |V|={graph.vertex_count} |E|={graph.edge_count} "
        f"regex={expression!r} s={source} t={target}"
    )

    lam = oracle_lam(graph, nfa, source, target)
    if lam is not None and lam > _MAX_ORACLE_LAM:
        _skips.append(seed)
        pytest.skip(f"λ={lam} beyond the oracle budget ({context})")
    try:
        expected = oracle_answer_set(
            graph, nfa, source, target, max_walks=_ORACLE_WALK_BUDGET
        )
    except RuntimeError:
        _skips.append(seed)
        pytest.skip(f"oracle walk budget exhausted ({context})")
    _runs.append(seed)

    outputs = {}
    for mode in _MODES:
        engine = DistinctShortestWalks(graph, nfa, source, target, mode=mode)
        walks = list(engine.enumerate())
        edges: List[Tuple[int, ...]] = [w.edges for w in walks]

        # λ agreement with the oracle.
        assert engine.lam == lam, f"{mode} λ mismatch ({context})"
        # Distinctness: each answer exactly once.
        assert len(set(edges)) == len(edges), (
            f"{mode} emitted duplicates ({context})"
        )
        # Shortestness: every output has length λ.
        assert all(len(e) == (lam or 0) for e in edges), (
            f"{mode} emitted a non-shortest walk ({context})"
        )
        # Completeness + soundness: exact answer-set equality.
        assert sorted(edges) == expected, (
            f"{mode} answer set differs from the oracle ({context})"
        )
        # Walk endpoints are the queried pair.
        for walk in walks:
            assert walk.src == source and walk.tgt == target, (
                f"{mode} walk has wrong endpoints ({context})"
            )
        outputs[mode] = edges

    # Output-order agreement where the paper guarantees it: the three
    # general modes share the DFS order…
    assert outputs["iterative"] == outputs["recursive"], context
    assert outputs["iterative"] == outputs["memoryless"], context

    # The packed column: the engines above all ran on the packed
    # annotation pipeline (flat L/B arrays end-to-end); replay the case
    # through the retained mapping-form pipeline (reference annotate →
    # dict trim → queue-object DFS) and hold both content *and* order
    # identical.  This is the guard that the packed representation is a
    # pure layout change.
    ref_cq = compile_query(graph, nfa)
    ref_ann = annotate_reference(ref_cq, source, target)
    ref_trimmed = trim(graph, ref_ann)
    assert ref_ann.packed is None and ref_trimmed.cells is None, context
    reference_edges = [
        w.edges
        for w in enumerate_walks(
            graph, ref_trimmed, ref_ann.lam, target, ref_ann.target_states
        )
    ]
    assert ref_ann.lam == lam, f"reference pipeline λ mismatch ({context})"
    assert reference_edges == outputs["iterative"], (
        f"packed pipeline order differs from the mapping pipeline ({context})"
    )
    # …and "auto" joins them unless the fast path (different traversal
    # order, same set — already checked above) was selected.
    auto_engine = DistinctShortestWalks(
        graph, nfa, source, target, mode="auto"
    )
    if not auto_engine.uses_fast_path:
        assert outputs["auto"] == outputs["iterative"], context

    # The façade column: the cached Database path (what RPQ, the
    # service and the CLI route through) must agree with the engines
    # on λ, the answer set, *and* the general-mode DFS order.
    db = Database(graph)
    query = db.query(expression).from_(source).to(target)
    result = query.run()
    facade = [row.walk.edges for row in result]
    assert result.lam == lam, f"façade λ mismatch ({context})"
    assert facade == outputs["iterative"], (
        f"façade output differs from the engines ({context})"
    )
    # A repeat of the identical query must be served from both caches.
    repeat = query.run()
    assert [row.walk.edges for row in repeat] == facade, context
    assert repeat.stats["cached"] == {"plan": True, "annotation": True}, (
        f"façade repeat missed the caches ({context})"
    )


def _oracle_pair(graph, nfa, source: int, target: int):
    """(λ, sorted answer set) per the oracle; skips oversize cases."""
    lam = oracle_lam(graph, nfa, source, target)
    if lam is not None and lam > _MAX_ORACLE_LAM:
        pytest.skip(f"λ={lam} beyond the oracle budget")
    if lam is None:
        return None, []
    try:
        answers = oracle_answer_set(
            graph, nfa, source, target, max_walks=_ORACLE_WALK_BUDGET
        )
    except RuntimeError:
        pytest.skip("oracle walk budget exhausted")
    return lam, answers


@pytest.mark.parametrize("case", range(N_FACADE_CASES))
def test_facade_all_pairs_matches_oracle(case: int) -> None:
    """``all_pairs()`` == the oracle run over every (s, t) pair."""
    seed = SEED_BASE + 10_000 + case
    graph, expression, _, _ = _draw_case(seed)
    nfa = rpq(expression).automaton
    context = f"seed={seed} regex={expression!r}"

    expected = {}
    for s in graph.vertices():
        for t in graph.vertices():
            lam, answers = _oracle_pair(graph, nfa, s, t)
            if lam is not None:
                name_s = graph.vertex_name(s)
                name_t = graph.vertex_name(t)
                expected[(name_s, name_t)] = (lam, answers)

    got = {}
    for row in Database(graph).query(expression).all_pairs().run():
        bucket = got.setdefault((row.source, row.target), [])
        bucket.append(row.walk.edges)
        assert row.lam == expected[(row.source, row.target)][0], context
    assert set(got) == set(expected), context
    for pair, edges in got.items():
        assert len(set(edges)) == len(edges), f"{pair} duplicates ({context})"
        assert sorted(edges) == expected[pair][1], f"{pair} ({context})"


@pytest.mark.parametrize("case", range(N_FACADE_CASES))
def test_facade_from_any_matches_oracle(case: int) -> None:
    """``from_any([...])`` == min-λ union of per-source oracle sets.

    The virtual super-source semantics: a walk is an answer iff it
    starts at one of the given sources and its length equals the
    minimum λ over all of them.
    """
    seed = SEED_BASE + 20_000 + case
    graph, expression, _, target = _draw_case(seed)
    nfa = rpq(expression).automaton
    rng = random.Random(seed ^ 0x5EED)
    n = graph.vertex_count
    sources = rng.sample(range(n), rng.randint(1, n))
    context = f"seed={seed} regex={expression!r} S={sources} t={target}"

    per_source = {s: _oracle_pair(graph, nfa, s, target) for s in sources}
    lams = [lam for lam, _ in per_source.values() if lam is not None]
    global_lam = min(lams) if lams else None
    expected = sorted(
        (str(graph.vertex_name(s)), e)
        for s, (lam, answers) in per_source.items()
        if lam == global_lam and lam is not None
        for e in answers
    )

    result = (
        Database(graph)
        .query(expression)
        .from_any([graph.vertex_name(s) for s in sources])
        .to(target)
        .run()
    )
    rows = result.all()
    assert result.lam == global_lam, context
    got = sorted((str(row.source), row.walk.edges) for row in rows)
    assert len(set(got)) == len(got), f"duplicates ({context})"
    assert got == expected, context


@pytest.mark.parametrize("case", range(N_FACADE_CASES))
def test_facade_from_any_to_all_matches_oracle(case: int) -> None:
    """``from_any([...]).to_all()``: per target, the min-λ union."""
    seed = SEED_BASE + 30_000 + case
    graph, expression, _, _ = _draw_case(seed)
    nfa = rpq(expression).automaton
    rng = random.Random(seed ^ 0x0DDB)
    n = graph.vertex_count
    sources = rng.sample(range(n), rng.randint(1, min(n, 3)))
    context = f"seed={seed} regex={expression!r} S={sources}"

    expected = {}
    for t in graph.vertices():
        per_source = {s: _oracle_pair(graph, nfa, s, t) for s in sources}
        lams = [lam for lam, _ in per_source.values() if lam is not None]
        if not lams:
            continue
        global_lam = min(lams)
        expected[str(graph.vertex_name(t))] = sorted(
            (str(graph.vertex_name(s)), e)
            for s, (lam, answers) in per_source.items()
            if lam == global_lam
            for e in answers
        )

    got = {}
    for row in (
        Database(graph)
        .query(expression)
        .from_any([graph.vertex_name(s) for s in sources])
        .to_all()
        .run()
    ):
        got.setdefault(str(row.target), []).append(
            (str(row.source), row.walk.edges)
        )
    assert set(got) == set(expected), context
    for t, pairs in got.items():
        assert sorted(pairs) == expected[t], f"target {t} ({context})"


@pytest.mark.parametrize("case", range(N_CASES))
def test_semantics_matrix(case: int) -> None:
    """Every semantics mode × engine mode vs its own oracle.

    The semantics column of the differential matrix: per case, the
    façade runs ``walks`` / ``trails`` / ``simple`` / ``any`` under
    each engine mode and is checked against the matching ground truth
    (:mod:`repro.baselines.oracle`) for distinctness,
    restriction-validity, completeness, and — where defined — output
    order (the restricted filter preserves the paper's DFS order; the
    fallback DFS and the any-walk witness are deterministic).
    """
    seed = SEED_BASE + 40_000 + case
    graph, expression, source, target = _draw_case(seed)
    nfa = rpq(expression).automaton
    context = (
        f"seed={seed} |V|={graph.vertex_count} |E|={graph.edge_count} "
        f"regex={expression!r} s={source} t={target}"
    )

    walk_lam = oracle_lam(graph, nfa, source, target)
    if walk_lam is not None and walk_lam > _MAX_ORACLE_LAM:
        _skips.append(seed)
        pytest.skip(f"λ={walk_lam} beyond the oracle budget ({context})")
    try:
        walk_set = oracle_answer_set(
            graph, nfa, source, target, max_walks=_ORACLE_WALK_BUDGET
        )
        restricted = {
            kind: oracle_restricted_set(
                graph, nfa, source, target, kind,
                max_walks=_ORACLE_WALK_BUDGET,
            )
            for kind in ("trails", "simple")
        }
    except RuntimeError:
        _skips.append(seed)
        pytest.skip(f"oracle walk budget exhausted ({context})")
    _runs.append(seed)

    db = Database(graph)
    base = db.query(expression).from_(source).to(target)
    order: dict = {}
    for mode in _MODES:
        # walks — the unrestricted baseline column.
        result = base.mode(mode).run()
        edges = [row.walk.edges for row in result]
        assert result.lam == walk_lam, f"walks λ ({mode}, {context})"
        assert sorted(edges) == walk_set, f"walks set ({mode}, {context})"

        # trails / simple — rλ + exact restricted answer sets.
        for kind, (rlam, rset) in restricted.items():
            result = base.semantics(kind).mode(mode).run()
            edges = [row.walk.edges for row in result]
            assert result.lam == rlam, f"{kind} rλ ({mode}, {context})"
            assert len(set(edges)) == len(edges), (
                f"{kind} duplicates ({mode}, {context})"
            )
            pred = restriction_predicate(kind, graph)
            assert all(pred(e, source) for e in edges), (
                f"{kind} emitted a restriction-violating walk "
                f"({mode}, {context})"
            )
            assert sorted(edges) == rset, (
                f"{kind} answer set differs from the oracle "
                f"({mode}, {context})"
            )
            order.setdefault(kind, {})[mode] = edges

        # any — at most one output: a valid witness of walk length λ.
        result = base.any_walk().mode(mode).run()
        rows = result.all()
        if walk_lam is None:
            assert rows == [] and result.lam is None, (
                f"any-walk on an empty instance ({mode}, {context})"
            )
        else:
            assert len(rows) == 1, f"any-walk row count ({mode}, {context})"
            witness = rows[0].walk.edges
            assert result.lam == walk_lam == len(witness), (
                f"any-walk witness length ({mode}, {context})"
            )
            assert oracle_walk_matches(
                graph, nfa, witness, source, target
            ), f"any-walk witness invalid ({mode}, {context})"
            order.setdefault("any", {})[mode] = [witness]

    # Order where defined: the general modes share the DFS order, the
    # restricted streams inherit it (filter) or use the deterministic
    # fallback DFS, and the any-walk witness is a pure function of the
    # instance — so every engine mode must produce identical output.
    for kind, per_mode in order.items():
        assert per_mode["iterative"] == per_mode["recursive"], (
            f"{kind} order ({context})"
        )
        assert per_mode["iterative"] == per_mode["memoryless"], (
            f"{kind} order ({context})"
        )


def test_oracle_non_degeneracy() -> None:
    """Each restricted oracle disagrees with plain walks somewhere.

    Guards the matrix against silent degeneration: if random instances
    never exercised a semantics difference, the trails/simple/any
    columns would be vacuous re-checks of the walks column.  The probe
    uses a fixed seed range (independent of ``DIFF_SEED_BASE``) so the
    guarantee holds in every CI matrix entry.
    """
    need = {"trails", "simple", "any"}
    for probe in range(2_000):
        if not need:
            break
        rng = random.Random(1_000_000 + probe)
        graph = random_graph(rng)
        expression = random_regex(rng)
        source = rng.randrange(graph.vertex_count)
        target = rng.randrange(graph.vertex_count)
        nfa = rpq(expression).automaton
        lam = oracle_lam(graph, nfa, source, target)
        if lam is None or lam > _MAX_ORACLE_LAM:
            continue
        try:
            walk_set = oracle_answer_set(
                graph, nfa, source, target, max_walks=_ORACLE_WALK_BUDGET
            )
            if "any" in need and len(walk_set) > 1:
                need.discard("any")  # One witness ≠ the full answer set.
            for kind in ("trails", "simple"):
                if kind in need:
                    rlam, rset = oracle_restricted_set(
                        graph, nfa, source, target, kind,
                        max_walks=_ORACLE_WALK_BUDGET,
                    )
                    if (rlam, rset) != (lam, walk_set):
                        need.discard(kind)
        except RuntimeError:
            continue
    assert not need, (
        f"oracles degenerate on the probe range: {sorted(need)} never "
        "disagreed with plain walks"
    )


def test_skip_budget_not_exhausted() -> None:
    """The harness must actually exercise (almost) all of its cases.

    Runs after the parametrized cases (pytest keeps file order); if
    some future change to the generators made most instances skip, the
    differential coverage would silently evaporate — fail instead.
    """
    total = len(_runs) + len(_skips)
    if total == 0:
        pytest.skip("differential cases did not run (filtered out?)")
    assert len(_runs) >= 0.9 * total, (
        f"only {len(_runs)}/{total} differential cases ran; "
        f"skipped seeds: {_skips[:10]}"
    )
