"""Randomized differential testing of live-graph mutations.

Each case draws, from a *seeded* PRNG, a random base graph plus a
random **interleaving** of mutation batches and queries, and plays it
against two worlds at once:

* the **live world** — a :class:`~repro.api.Database` over a
  :class:`~repro.live.LiveGraph`, mutated through
  :meth:`~repro.api.Database.mutate` (fine-grained invalidation,
  epoch-lazy views, occasional auto-compaction);
* the **oracle world** — after every mutation prefix, an immutable
  :class:`Graph` rebuilt from scratch from the live edge list, queried
  through the ordinary (already oracle-verified) engine.

Per query step, the façade's answers on the live graph are checked in
*both* the eager and the memoryless engine modes for

* **distinctness** — no walk emitted twice;
* **shortestness** — every output has length λ (= the oracle's λ);
* **completeness** — the rendered answer multiset equals the rebuilt
  oracle's;
* **order** — the rendered output *sequence* matches the oracle's DFS
  order (the no-reindexing invariant keeps live ``TgtIdx`` order
  aligned with the rebuild's insertion order), and the two live modes
  agree edge-for-edge;
* **packed column** — the façade's (possibly cached-across-mutations)
  CSR-packed annotations are replayed cold through the retained
  mapping-form pipeline on the same live graph, raw edge id for raw
  edge id: stale-but-kept packed cache entries and packed/dict layout
  divergences both fail here;
* **semantics column** — the same query under ``trails`` / ``simple``
  (vs :func:`repro.baselines.oracle.oracle_restricted_set` on the
  rebuilt graph) and ``any`` (witness validity + λ): cached
  semantics-restricted artifacts must be invalidated by interleaved
  mutations exactly like the walks entries.

Walks are compared by rendering each edge as
``(src name, tgt name, label names)`` because edge *ids* legitimately
differ between the overlay and a rebuild (tombstone slots close up).

Knobs (mirroring ``test_differential.py``): ``LIVE_DIFF_CASES``
(default 200) and ``LIVE_DIFF_SEED_BASE`` (default 0) — the CI
``mutation-fuzz`` job runs disjoint seed ranges, and any failure
replays locally with::

    LIVE_DIFF_SEED_BASE=<base> PYTHONPATH=src python -m pytest \
        "tests/property/test_live_differential.py::test_interleaving[<case>]"
"""

from __future__ import annotations

import os
import random
from typing import List, Tuple

import pytest

from repro.api import Database
from repro.baselines.oracle import (
    oracle_restricted_set,
    oracle_walk_matches,
    random_graph,
    random_regex_compact,
)
from repro.core.annotate import annotate_reference
from repro.core.compile import compile_query
from repro.core.engine import DistinctShortestWalks
from repro.core.enumerate import enumerate_walks
from repro.core.trim import trim
from repro.graph.database import Graph
from repro.live import (
    AddEdge,
    AddVertex,
    LiveGraph,
    RemoveEdge,
    SetEdgeLabels,
)
from repro.query import rpq

_ALPHABET = ("a", "b", "c")
_EXTRA_LABELS = ("n0", "n1")  # Drawn occasionally: label-universe growth.

SEED_BASE = int(os.environ.get("LIVE_DIFF_SEED_BASE", "0"))
N_CASES = int(os.environ.get("LIVE_DIFF_CASES", "200"))
_N_STEPS = 12
_RESTRICTED_BUDGET = 60_000


def _random_graph(rng: random.Random) -> Graph:
    # The shared generator (repro.baselines.oracle) at this harness's
    # historical size; the draw sequence is unchanged.
    return random_graph(rng, max_vertices=5, max_edges=10)


def _random_regex(rng: random.Random, depth: int = 2) -> str:
    return random_regex_compact(rng, depth)


def _random_labels(rng: random.Random) -> List[str]:
    labels = rng.sample(_ALPHABET, rng.randint(1, 2))
    if rng.random() < 0.15:
        labels.append(rng.choice(_EXTRA_LABELS))
    return sorted(set(labels))


def _random_batch(rng: random.Random, live: LiveGraph) -> List:
    ops: List = []
    for _ in range(rng.randint(1, 3)):
        live_ids = [e for e in live.live_edges()]
        # Exclude ids already staged for removal/relabel in this batch.
        staged = {
            op.edge for op in ops if isinstance(op, (RemoveEdge,))
        }
        live_ids = [e for e in live_ids if e not in staged]
        roll = rng.random()
        vertex_pool = [
            live.vertex_name(v) for v in live.vertices()
        ] or ["v0"]

        def pick_vertex() -> str:
            if rng.random() < 0.12:
                return f"w{rng.randrange(4)}"  # Possibly-new vertex.
            return rng.choice(vertex_pool)

        if roll < 0.5 or not live_ids:
            ops.append(
                AddEdge(
                    pick_vertex(), pick_vertex(),
                    tuple(_random_labels(rng)),
                )
            )
        elif roll < 0.75:
            ops.append(RemoveEdge(rng.choice(live_ids)))
        elif roll < 0.9:
            ops.append(
                SetEdgeLabels(
                    rng.choice(live_ids), tuple(_random_labels(rng))
                )
            )
        else:
            ops.append(AddVertex(f"u{rng.randrange(3)}"))
    return ops


def _rendered(graph, edges: Tuple[int, ...]) -> Tuple:
    return tuple(
        (
            str(graph.vertex_name(graph.src(e))),
            str(graph.vertex_name(graph.tgt(e))),
            graph.label_names_of(e),
        )
        for e in edges
    )


@pytest.mark.parametrize("case", range(N_CASES))
def test_interleaving(case: int) -> None:
    seed = SEED_BASE + case
    rng = random.Random(seed)
    base = _random_graph(rng)
    live = LiveGraph(base)
    db = Database(live)
    expressions = [_random_regex(rng) for _ in range(3)]
    nfas = {x: rpq(x).automaton for x in expressions}

    mutations = 0
    queries = 0
    for step in range(_N_STEPS):
        context = f"seed={seed} step={step}"
        if rng.random() < 0.45:
            ops = _random_batch(rng, live)
            result = db.mutate(ops)
            assert result.batch.ops == tuple(ops), context
            mutations += 1
            continue

        queries += 1
        expression = rng.choice(expressions)
        n = live.vertex_count
        source = live.vertex_name(rng.randrange(n))
        target = live.vertex_name(rng.randrange(n))
        context = f"{context} regex={expression!r} {source}->{target}"

        # Oracle world: rebuild from scratch, run the proven engine.
        frozen = live.to_graph()
        engine = DistinctShortestWalks(
            frozen, nfas[expression], source, target, mode="iterative"
        )
        oracle_lam = engine.lam
        oracle_walks = [
            _rendered(frozen, w.edges) for w in engine.enumerate()
        ]

        # Live world: the cached façade path, both engine families.
        per_mode = {}
        for mode in ("iterative", "memoryless"):
            result = (
                db.query(expression)
                .from_(source).to(target)
                .mode(mode)
                .run()
            )
            edges = [row.walk.edges for row in result]
            assert result.lam == oracle_lam, f"{mode} λ ({context})"
            # Distinctness, on raw live edge ids.
            assert len(set(edges)) == len(edges), f"{mode} ({context})"
            # Shortestness.
            assert all(
                len(e) == (oracle_lam or 0) for e in edges
            ), f"{mode} ({context})"
            # Completeness + order vs the rebuilt oracle.
            assert [
                _rendered(live, e) for e in edges
            ] == oracle_walks, f"{mode} vs rebuild ({context})"
            per_mode[mode] = edges
        # The two live modes agree edge-for-edge.
        assert per_mode["iterative"] == per_mode["memoryless"], context

        # The packed column: the façade answers above came from packed
        # annotations (possibly *cached* across earlier mutation
        # batches — exactly the entries fine-grained invalidation chose
        # to keep).  Replay the query cold on the live graph through
        # the retained mapping-form pipeline and hold raw-edge-id order
        # identical: a stale-but-kept packed annotation or a packed/
        # dict layout divergence both fail here.
        ref_cq = compile_query(live, nfas[expression])
        ref_ann = annotate_reference(
            ref_cq, live.resolve_vertex(source), live.resolve_vertex(target)
        )
        assert ref_ann.lam == oracle_lam, f"reference λ ({context})"
        ref_edges = [
            w.edges
            for w in enumerate_walks(
                live,
                trim(live, ref_ann),
                ref_ann.lam,
                live.resolve_vertex(target),
                ref_ann.target_states,
            )
        ]
        assert ref_edges == per_mode["iterative"], (
            f"packed cached pipeline differs from mapping replay ({context})"
        )

        # The semantics column: restricted and any-walk answers must
        # track the mutated graph too.  Their cache entries (plan and
        # annotation, keyed with the restriction) ride the same
        # label-footprint invalidation as the walks entries — a stale
        # trails/simple/any result after an interleaved batch fails
        # against the rebuilt-from-scratch oracle here.
        for rkind in ("trails", "simple"):
            try:
                rlam, rset = oracle_restricted_set(
                    frozen,
                    nfas[expression],
                    frozen.resolve_vertex(source),
                    frozen.resolve_vertex(target),
                    rkind,
                    max_walks=_RESTRICTED_BUDGET,
                )
            except RuntimeError:  # Pathological step: skip this column.
                continue
            result = (
                db.query(expression)
                .from_(source).to(target)
                .semantics(rkind)
                .run()
            )
            edges = [row.walk.edges for row in result]
            assert result.lam == rlam, f"{rkind} rλ ({context})"
            assert len(set(edges)) == len(edges), f"{rkind} ({context})"
            assert sorted(_rendered(live, e) for e in edges) == sorted(
                _rendered(frozen, e) for e in rset
            ), f"{rkind} vs rebuild ({context})"

        rows = (
            db.query(expression).from_(source).to(target).any_walk()
            .run().all()
        )
        if oracle_lam is None:
            assert rows == [], f"any-walk on empty instance ({context})"
        else:
            assert len(rows) == 1, f"any-walk row count ({context})"
            witness = rows[0].walk.edges
            assert len(witness) == oracle_lam, f"any-walk λ ({context})"
            assert oracle_walk_matches(
                live,
                nfas[expression],
                witness,
                live.resolve_vertex(source),
                live.resolve_vertex(target),
            ), f"any-walk witness invalid on the live graph ({context})"

    # The interleaving draw must exercise both kinds of step over the
    # suite; individual cases may legitimately be query- or
    # mutation-only, so only guard against degenerate *generators*.
    assert mutations + queries == _N_STEPS


def test_interleaving_draws_mix() -> None:
    """Across the configured seed range, both step kinds occur often."""
    rng_hits = {"mutation": 0, "query": 0}
    for case in range(min(N_CASES, 50)):
        rng = random.Random(SEED_BASE + case)
        _random_graph(rng)
        for _ in range(_N_STEPS):
            if rng.random() < 0.45:
                rng_hits["mutation"] += 1
            else:
                rng_hits["query"] += 1
    assert rng_hits["mutation"] > 0 and rng_hits["query"] > 0
