"""EXP-F1 / EXP-F3: exact reproduction of the paper's Figures 1 and 3.

Figure 3 prints, for the instance ⟦A⟧(D, Alix, Bob) of Example 9, the
full preprocessing state: the ``L`` maps (lengths), ``B`` maps
(per-TgtIdx predecessor lists) and ``C`` queues.  These tests assert
every single printed cell.
"""

import pytest

from repro.core.annotate import annotate
from repro.core.compile import compile_query
from repro.core.trim import trim
from repro.workloads.fraud import (
    EXAMPLE9_EDGE_IDS,
    example9_automaton,
    example9_graph,
)

E = EXAMPLE9_EDGE_IDS


@pytest.fixture(scope="module")
def preprocessing():
    graph = example9_graph()
    cq = compile_query(graph, example9_automaton())
    ann = annotate(cq, graph.vertex_id("Alix"), graph.vertex_id("Bob"))
    trimmed = trim(graph, ann)
    return graph, ann, trimmed


# Figure 3's tables, transcribed cell by cell.  ⊥ cells are simply
# absent from our (partial) maps.  B lists are compared as multisets
# (the paper's list order depends on unspecified iteration order).
FIGURE3_L = {
    "Alix": {0: 0},
    "Bob": {0: 2, 1: 3},
    "Cassie": {0: 1, 1: 2},
    "Dan": {0: 1, 1: 1},
    "Eve": {0: 2, 1: 2},
}

FIGURE3_B = {
    "Alix": {},
    "Bob": {0: {0: [], 1: [0]}, 1: {0: [1, 0, 1], 1: [1]}},
    "Cassie": {0: {0: [], 1: [0]}, 1: {0: [0, 1], 1: []}},
    "Dan": {0: {0: [0]}, 1: {0: [0]}},
    "Eve": {
        0: {0: [0], 1: [0], 2: []},
        1: {0: [1], 1: [], 2: [0]},
    },
}

# C queues: per state, the (edge-name, predecessor multiset) pairs in
# queue order.  Empty B cells do not appear (that is Trim's job).
FIGURE3_C = {
    "Bob": {0: [("e7", [0])], 1: [("e8", [0, 1, 1]), ("e7", [1])]},
    "Cassie": {0: [("e1", [0])], 1: [("e3", [0, 1])]},
    "Dan": {0: [("e2", [0])], 1: [("e2", [0])]},
    "Eve": {
        0: [("e4", [0]), ("e5", [0])],
        1: [("e4", [1]), ("e6", [0])],
    },
}


class TestFigure3L:
    @pytest.mark.parametrize("vertex", sorted(FIGURE3_L))
    def test_L_table(self, preprocessing, vertex):
        graph, ann, _ = preprocessing
        assert ann.L[graph.vertex_id(vertex)] == FIGURE3_L[vertex]


class TestFigure3B:
    @pytest.mark.parametrize("vertex", sorted(FIGURE3_B))
    def test_B_table(self, preprocessing, vertex):
        graph, ann, _ = preprocessing
        got = ann.B[graph.vertex_id(vertex)]
        expected = FIGURE3_B[vertex]
        # States with only-empty cells may be absent entirely.
        for state, cells in expected.items():
            non_empty = {i: c for i, c in cells.items() if c}
            if not non_empty:
                assert state not in got or all(
                    not preds for preds in got[state].values()
                )
                continue
            for i, preds in cells.items():
                got_preds = got.get(state, {}).get(i, [])
                assert sorted(got_preds) == sorted(preds), (vertex, state, i)
        # No extra non-empty cells beyond the figure.
        for state, cells in got.items():
            for i, preds in cells.items():
                if preds:
                    assert sorted(preds) == sorted(
                        expected.get(state, {}).get(i, [])
                    ), (vertex, state, i)


class TestFigure3C:
    @pytest.mark.parametrize("vertex", sorted(FIGURE3_C))
    def test_C_queues(self, preprocessing, vertex):
        graph, _, trimmed = preprocessing
        v = graph.vertex_id(vertex)
        expected = FIGURE3_C[vertex]
        for state, items in expected.items():
            queue = trimmed.queue(v, state)
            assert queue is not None, (vertex, state)
            got = [(e, sorted(x)) for e, x in queue]
            want = [(E[name], sorted(preds)) for name, preds in items]
            assert got == want, (vertex, state)

    def test_alix_has_no_queues(self, preprocessing):
        graph, _, trimmed = preprocessing
        assert trimmed.queues[graph.vertex_id("Alix")] == {}


class TestLambda:
    def test_lam_is_three(self, preprocessing):
        _, ann, _ = preprocessing
        assert ann.lam == 3

    def test_start_certificate(self, preprocessing):
        """Main's S = {q | L_t[q] = λ} ∩ F = {1}."""
        _, ann, _ = preprocessing
        assert ann.target_states == frozenset({1})
