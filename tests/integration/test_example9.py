"""EXP-E9: every claim Example 9 makes, as executable assertions."""

import pytest

from repro.core.engine import DistinctShortestWalks
from repro.core.walks import Walk
from repro.query import rpq
from repro.workloads.fraud import (
    EXAMPLE9_EDGE_IDS,
    example9_automaton,
    example9_graph,
    example9_query,
)

E = EXAMPLE9_EDGE_IDS


@pytest.fixture(scope="module")
def engine():
    return DistinctShortestWalks(
        example9_graph(), example9_automaton(), "Alix", "Bob"
    )


@pytest.fixture(scope="module")
def walks(engine):
    return list(engine.enumerate())


class TestExample9Claims:
    def test_shortest_walk_has_length_two_but_does_not_match(self):
        """⟨e1, e7⟩ is the shortest Alix→Bob walk; hh ∉ L(A)."""
        graph = example9_graph()
        walk = Walk(graph, (E["e1"], E["e7"]))
        assert walk.length == 2
        assert not example9_automaton().matches_label_sets(walk.label_sets())

    def test_lambda_is_three(self, engine):
        assert engine.lam == 3

    def test_exactly_the_four_walks(self, walks):
        expected = {
            (E["e1"], E["e5"], E["e8"]),  # w1
            (E["e1"], E["e6"], E["e8"]),  # w2
            (E["e2"], E["e3"], E["e7"]),  # w3
            (E["e2"], E["e4"], E["e8"]),  # w4
        }
        assert {w.edges for w in walks} == expected

    def test_each_returned_once(self, walks):
        """w4 carries three accepted label words but appears once."""
        assert len(walks) == len({w.edges for w in walks}) == 4

    def test_w1_w2_distinct_despite_same_vertices(self, walks):
        w1 = next(w for w in walks if w.edges == (E["e1"], E["e5"], E["e8"]))
        w2 = next(w for w in walks if w.edges == (E["e1"], E["e6"], E["e8"]))
        assert w1.vertex_names() == w2.vertex_names()
        assert w1 != w2

    def test_w5_not_returned(self, walks):
        """⟨e2, e3, e6, e8⟩ matches but has length 4 > λ."""
        graph = example9_graph()
        w5 = Walk(graph, (E["e2"], E["e3"], E["e6"], E["e8"]))
        assert example9_automaton().matches_label_sets(w5.label_sets())
        assert w5.length == 4
        assert w5.edges not in {w.edges for w in walks}

    def test_w4_label_words(self):
        """w4's accepted words are exactly {shh, hhs, shs}."""
        graph = example9_graph()
        nfa = example9_automaton()
        w4 = Walk(graph, (E["e2"], E["e4"], E["e8"]))
        accepted = {
            word for word in w4.label_words() if nfa.accepts(list(word))
        }
        assert accepted == {
            ("s", "h", "h"),
            ("h", "h", "s"),
            ("s", "h", "s"),
        }

    def test_multiplicities(self, engine):
        by_edges = {
            w.edges: m for w, m in engine.enumerate_with_multiplicity()
        }
        assert by_edges[(E["e2"], E["e4"], E["e8"])] == 3
        assert by_edges[(E["e1"], E["e6"], E["e8"])] == 2
        assert by_edges[(E["e2"], E["e3"], E["e7"])] == 2
        assert by_edges[(E["e1"], E["e5"], E["e8"])] == 1


class TestViaPublicApi:
    def test_regex_front_end(self):
        walks = list(
            rpq(example9_query).shortest_walks(
                example9_graph(), "Alix", "Bob"
            )
        )
        assert len(walks) == 4

    def test_all_modes(self):
        graph = example9_graph()
        results = {
            mode: [
                w.edges
                for w in DistinctShortestWalks(
                    graph, example9_automaton(), "Alix", "Bob", mode=mode
                ).enumerate()
            ]
            for mode in ("iterative", "recursive", "memoryless", "auto")
        }
        assert (
            results["iterative"]
            == results["recursive"]
            == results["memoryless"]
        )
        # auto uses the general engine here (multi-labeled data) and
        # must therefore produce the identical sequence.
        assert results["auto"] == results["iterative"]
