"""Cross-validation: every algorithm in the repository must agree.

On random instances, the following must produce the same answer set:

* the paper's algorithm (iterative / recursive / memoryless modes),
* the naive product-path baseline,
* the Martens–Trautner reduction (Theorem 1),
* the simple-setting fast path (where eligible),
* the brute-force oracle.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.martens_trautner import martens_trautner_walks
from repro.baselines.naive import naive_enumerate
from repro.baselines.oracle import oracle_answer_set
from repro.core.compile import compile_query
from repro.core.engine import DistinctShortestWalks
from repro.query import rpq

from tests.conftest import small_instances


class TestAllAlgorithmsAgree:
    @given(small_instances())
    @settings(max_examples=80, deadline=None)
    def test_engine_vs_all_baselines(self, instance):
        graph, nfa, s, t = instance
        cq = compile_query(graph, nfa)

        oracle = oracle_answer_set(graph, nfa, s, t)
        engine = sorted(
            w.edges
            for w in DistinctShortestWalks(graph, nfa, s, t).enumerate()
        )
        naive = sorted(w.edges for w in naive_enumerate(cq, s, t))
        reduction = sorted(
            w.edges for w in martens_trautner_walks(cq, s, t)
        )
        assert engine == oracle
        assert naive == oracle
        assert reduction == oracle

    @given(small_instances(allow_epsilon=True))
    @settings(max_examples=60, deadline=None)
    def test_epsilon_instances_all_agree(self, instance):
        graph, nfa, s, t = instance
        oracle = oracle_answer_set(graph, nfa, s, t)
        for mode in ("iterative", "recursive", "memoryless"):
            got = sorted(
                w.edges
                for w in DistinctShortestWalks(
                    graph, nfa, s, t, mode=mode
                ).enumerate()
            )
            assert got == oracle, mode


class TestRegexPipelines:
    """Thompson- and Glushkov-compiled queries give identical answers."""

    _EXPRESSIONS = [
        "a",
        "a b",
        "a | b",
        "a*",
        "(a | b)* c",
        "a+ b?",
        "a{1,3} b",
        ". b",
        "(a b)* | c+",
    ]

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.sampled_from(_EXPRESSIONS),
    )
    @settings(max_examples=60, deadline=None)
    def test_thompson_equals_glushkov(self, seed, expression):
        rng = random.Random(seed)
        from repro.graph.builder import GraphBuilder

        builder = GraphBuilder()
        n = rng.randint(2, 6)
        names = [f"v{i}" for i in range(n)]
        builder.add_vertices(names)
        for _ in range(rng.randint(1, 12)):
            labels = rng.sample(["a", "b", "c"], rng.randint(1, 2))
            builder.add_edge(
                rng.choice(names), rng.choice(names), labels
            )
        graph = builder.build()
        s, t = rng.randrange(n), rng.randrange(n)

        thompson = sorted(
            w.edges
            for w in rpq(expression, method="thompson").shortest_walks(
                graph, s, t, mode="iterative"
            )
        )
        glushkov = sorted(
            w.edges
            for w in rpq(expression, method="glushkov").shortest_walks(
                graph, s, t, mode="iterative"
            )
        )
        assert thompson == glushkov


class TestScaledScenarios:
    """Deterministic, moderately sized end-to-end scenarios."""

    def test_fraud_network_consistency(self):
        from repro.workloads.fraud import fraud_network

        graph = fraud_network(60, 240, seed=11)
        query = "(h | w | c)* s (h | w | c | s)*"
        engine = DistinctShortestWalks(graph, query, "acct0", "acct59")
        walks = list(engine.enumerate())
        assert walks, "planted chain guarantees an answer"
        assert len({w.edges for w in walks}) == len(walks)
        assert all(w.length == engine.lam for w in walks)
        nfa = rpq(query).automaton
        assert all(
            nfa.matches_label_sets(w.label_sets()) for w in walks
        )

    def test_social_network_consistency(self):
        from repro.workloads.social import social_network

        graph = social_network(80, seed=5)
        engine = DistinctShortestWalks(
            graph, "(knows | follows)+", "p0", "p40"
        )
        reference = sorted(w.edges for w in engine.enumerate())
        memoryless = sorted(
            w.edges
            for w in DistinctShortestWalks(
                graph, "(knows | follows)+", "p0", "p40", mode="memoryless"
            ).enumerate()
        )
        assert reference == memoryless

    def test_diamond_chain_counts(self):
        from repro.workloads.worstcase import diamond_chain

        graph, nfa, s, t = diamond_chain(10, parallel=2)
        engine = DistinctShortestWalks(graph, nfa, s, t)
        assert engine.count() == 2 ** 10
