"""Cross-validation against networkx as an *independent* oracle.

All in-repo baselines share this library's graph substrate; networkx
shares nothing.  On graphs without parallel edges and with an
accept-everything query, Distinct Shortest Walks degenerates to
classical all-shortest-paths — which networkx implements — so the two
must agree exactly:

* unit costs → ``nx.all_shortest_paths``;
* positive integer costs → ``nx.all_shortest_paths(weight=...)``.

Parallel edges are excluded on purpose: networkx enumerates *node*
paths while the paper enumerates *walks* (paper Example 9: two
parallel transfers are two answers), so the comparison is only
meaningful when the notions coincide.
"""

import random

import networkx as nx
import pytest

from repro.automata.nfa import NFA
from repro.core.cheapest import DistinctCheapestWalks
from repro.core.engine import DistinctShortestWalks
from repro.graph.builder import GraphBuilder


def _accept_all(labels=("a",)) -> NFA:
    nfa = NFA(1)
    for a in labels:
        nfa.add_transition(0, a, 0)
    nfa.set_initial(0)
    nfa.set_final(0)
    return nfa


def _random_simple_digraph(seed: int, n: int, density: float):
    """A simple digraph in both representations (no parallel edges)."""
    rng = random.Random(seed)
    builder = GraphBuilder()
    nxg = nx.DiGraph()
    for i in range(n):
        builder.add_vertex(i)
        nxg.add_node(i)
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < density:
                cost = rng.randint(1, 9)
                builder.add_edge(u, v, ["a"], cost=cost)
                nxg.add_edge(u, v, weight=cost)
    return builder.build(), nxg


def _node_paths(walks):
    return sorted(tuple(w.vertices()) for w in walks)


class TestUnitCosts:
    @pytest.mark.parametrize("seed", range(15))
    def test_all_shortest_paths_agree(self, seed):
        graph, nxg = _random_simple_digraph(seed, n=9, density=0.25)
        source, target = 0, 8
        engine = DistinctShortestWalks(graph, _accept_all(), source, target)
        ours = _node_paths(engine.enumerate())
        try:
            reference = sorted(
                tuple(p) for p in nx.all_shortest_paths(nxg, source, target)
            )
        except nx.NetworkXNoPath:
            reference = []
        assert ours == reference

    @pytest.mark.parametrize("seed", range(8))
    def test_lambda_matches_nx_distance(self, seed):
        graph, nxg = _random_simple_digraph(seed + 100, n=10, density=0.2)
        engine = DistinctShortestWalks(graph, _accept_all(), 0, 9)
        if engine.lam is None:
            assert not nx.has_path(nxg, 0, 9)
        else:
            assert engine.lam == nx.shortest_path_length(nxg, 0, 9)


class TestWeightedCosts:
    @pytest.mark.parametrize("seed", range(15))
    def test_all_cheapest_paths_agree(self, seed):
        graph, nxg = _random_simple_digraph(seed + 500, n=9, density=0.25)
        source, target = 0, 8
        engine = DistinctCheapestWalks(graph, _accept_all(), source, target)
        ours = _node_paths(engine.enumerate())
        try:
            reference = sorted(
                tuple(p)
                for p in nx.all_shortest_paths(
                    nxg, source, target, weight="weight"
                )
            )
        except nx.NetworkXNoPath:
            reference = []
        assert ours == reference
        if ours:
            assert engine.cheapest_cost == nx.shortest_path_length(
                nxg, source, target, weight="weight"
            )

    @pytest.mark.parametrize("heap", ["binary", "pairing"])
    def test_both_heaps_match_nx(self, heap):
        graph, nxg = _random_simple_digraph(4242, n=12, density=0.3)
        engine = DistinctCheapestWalks(
            graph, _accept_all(), 0, 11, heap=heap
        )
        ours = _node_paths(engine.enumerate())
        reference = sorted(
            tuple(p)
            for p in nx.all_shortest_paths(nxg, 0, 11, weight="weight")
        )
        assert ours == reference


class TestMultiTarget:
    def test_sweep_matches_nx_single_source(self):
        from repro.core.multi_target import MultiTargetShortestWalks

        graph, nxg = _random_simple_digraph(77, n=12, density=0.25)
        sweep = MultiTargetShortestWalks(graph, _accept_all(), 0)
        lengths = nx.single_source_shortest_path_length(nxg, 0)
        reached = set(sweep.reached_targets())
        # Accept-all matches ε, so the source itself is reached (λ=0),
        # mirroring networkx's distance-0 entry for the source.
        assert reached == set(lengths)
        for t in reached:
            assert sweep.lam_for(t) == lengths[t]
