"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

from typing import List, Tuple

import pytest
from hypothesis import strategies as st

from repro.automata.nfa import NFA
from repro.graph.builder import GraphBuilder
from repro.graph.database import Graph
from repro.workloads.fraud import example9_automaton, example9_graph

# ---------------------------------------------------------------------------
# Static fixtures
# ---------------------------------------------------------------------------


@pytest.fixture
def fig1_graph() -> Graph:
    """The paper's Figure 1 database."""
    return example9_graph()


@pytest.fixture
def fig3_automaton() -> NFA:
    """The paper's Figure 3 automaton for ``h* s (h + s)*``."""
    return example9_automaton()


# ---------------------------------------------------------------------------
# Hypothesis strategies for random small instances
# ---------------------------------------------------------------------------

_ALPHABET = ("a", "b", "c")


@st.composite
def small_graphs(
    draw,
    max_vertices: int = 6,
    max_edges: int = 12,
    alphabet: Tuple[str, ...] = _ALPHABET,
) -> Graph:
    """Random multi-labeled multi-edge graphs (self-loops allowed)."""
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    builder = GraphBuilder()
    builder.add_vertices([f"v{i}" for i in range(n)])
    for _ in range(m):
        src = draw(st.integers(min_value=0, max_value=n - 1))
        tgt = draw(st.integers(min_value=0, max_value=n - 1))
        labels = draw(
            st.sets(
                st.sampled_from(alphabet), min_size=1, max_size=len(alphabet)
            )
        )
        builder.add_edge(f"v{src}", f"v{tgt}", sorted(labels))
    return builder.build()


@st.composite
def small_nfas(
    draw,
    max_states: int = 4,
    alphabet: Tuple[str, ...] = _ALPHABET,
    allow_epsilon: bool = False,
) -> NFA:
    """Random NFAs over the same alphabet as :func:`small_graphs`."""
    from repro.automata.nfa import EPSILON

    n = draw(st.integers(min_value=1, max_value=max_states))
    nfa = NFA(n)
    n_transitions = draw(st.integers(min_value=0, max_value=3 * n))
    symbols: List[object] = list(alphabet)
    if allow_epsilon:
        symbols.append(EPSILON)
    for _ in range(n_transitions):
        q = draw(st.integers(min_value=0, max_value=n - 1))
        p = draw(st.integers(min_value=0, max_value=n - 1))
        label = draw(st.sampled_from(symbols))
        nfa.add_transition(q, label, p)
    initial = draw(
        st.sets(st.integers(min_value=0, max_value=n - 1), min_size=1)
    )
    final = draw(st.sets(st.integers(min_value=0, max_value=n - 1)))
    nfa.set_initial(*initial)
    nfa.set_final(*final)
    return nfa


@st.composite
def small_instances(draw, allow_epsilon: bool = False):
    """A full Distinct Shortest Walks instance ``(D, A, s, t)``."""
    graph = draw(small_graphs())
    nfa = draw(small_nfas(allow_epsilon=allow_epsilon))
    s = draw(st.integers(min_value=0, max_value=graph.vertex_count - 1))
    t = draw(st.integers(min_value=0, max_value=graph.vertex_count - 1))
    return graph, nfa, s, t


@st.composite
def regex_asts(draw, max_depth: int = 3):
    """Random regex ASTs over the shared alphabet (sugar included)."""
    from repro.automata.regex_ast import (
        AnyAtom,
        Concat,
        EpsilonAtom,
        Label,
        Optional,
        Plus,
        Repeat,
        Star,
        Union,
    )

    def node(depth: int):
        atoms = [
            st.sampled_from([Label("a"), Label("b"), Label("c")]),
            st.just(EpsilonAtom()),
            st.just(AnyAtom()),
        ]
        if depth <= 0:
            return draw(st.one_of(atoms))
        kind = draw(
            st.sampled_from(
                ["atom", "concat", "union", "star", "plus", "opt", "repeat"]
            )
        )
        if kind == "atom":
            return draw(st.one_of(atoms))
        if kind == "concat":
            return Concat((node(depth - 1), node(depth - 1)))
        if kind == "union":
            return Union((node(depth - 1), node(depth - 1)))
        if kind == "star":
            return Star(node(depth - 1))
        if kind == "plus":
            return Plus(node(depth - 1))
        if kind == "opt":
            return Optional(node(depth - 1))
        lo = draw(st.integers(min_value=0, max_value=2))
        hi = draw(st.one_of(st.none(), st.integers(min_value=lo, max_value=3)))
        return Repeat(node(depth - 1), lo, hi)

    return node(max_depth)


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def edge_sets(walks) -> List[Tuple[int, ...]]:
    """Edge tuples of an iterable of walks, in enumeration order."""
    return [w.edges for w in walks]
