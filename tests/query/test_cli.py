"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.graph.io import save_edge_list, save_json
from repro.workloads.fraud import example9_graph


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "fraud.txt"
    save_edge_list(example9_graph(), path)
    return str(path)


@pytest.fixture
def json_graph_file(tmp_path):
    path = tmp_path / "fraud.json"
    save_json(example9_graph(), path)
    return str(path)


class TestQueryCommand:
    def test_basic_query(self, graph_file, capsys):
        code = main(["query", graph_file, "h* s (h | s)*", "Alix", "Bob"])
        out = capsys.readouterr().out
        assert code == 0
        assert "λ = 3" in out
        assert out.count("Alix") == 4  # One line per walk.

    def test_json_input(self, json_graph_file, capsys):
        code = main(
            ["query", json_graph_file, "h* s (h | s)*", "Alix", "Bob"]
        )
        assert code == 0
        assert "λ = 3" in capsys.readouterr().out

    def test_no_match_exit_code(self, graph_file, capsys):
        code = main(["query", graph_file, "h", "Bob", "Alix"])
        assert code == 1
        assert "no matching walk" in capsys.readouterr().out

    def test_limit(self, graph_file, capsys):
        code = main(
            ["query", graph_file, "h* s (h | s)*", "Alix", "Bob",
             "--limit", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "stopped after 2" in out

    def test_multiplicity_flag(self, graph_file, capsys):
        code = main(
            ["query", graph_file, "h* s (h | s)*", "Alix", "Bob",
             "--multiplicity"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "[3 runs]" in out

    def test_count_flag(self, graph_file, capsys):
        code = main(
            ["query", graph_file, "h* s (h | s)*", "Alix", "Bob", "--count"]
        )
        assert code == 0
        assert "total answers: 4" in capsys.readouterr().out

    def test_all_targets(self, graph_file, capsys):
        code = main(
            ["query", graph_file, "h* s (h | s)*", "Alix", "--all-targets"]
        )
        out = capsys.readouterr().out
        assert code == 0
        for name in ("Bob", "Cassie", "Dan", "Eve"):
            assert f"=== {name}" in out

    def test_missing_target_is_error(self, graph_file, capsys):
        code = main(["query", graph_file, "h", "Alix"])
        assert code == 2
        assert "TARGET" in capsys.readouterr().err

    def test_cheapest(self, tmp_path, capsys):
        path = tmp_path / "costs.txt"
        path.write_text("a -> b : x @ 9\na -> b : x @ 2\n")
        code = main(["query", str(path), "x", "a", "b", "--cheapest"])
        out = capsys.readouterr().out
        assert code == 0
        assert "cheapest matching cost: 2" in out

    def test_modes(self, graph_file, capsys):
        for mode in ("iterative", "recursive", "memoryless"):
            code = main(
                ["query", graph_file, "h* s (h | s)*", "Alix", "Bob",
                 "--mode", mode]
            )
            assert code == 0

    def test_unknown_vertex(self, graph_file, capsys):
        code = main(["query", graph_file, "h", "Nobody", "Bob"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_bad_expression(self, graph_file, capsys):
        code = main(["query", graph_file, "h |", "Alix", "Bob"])
        assert code == 2


class TestPlanCommand:
    def test_plan(self, graph_file, capsys):
        code = main(["plan", graph_file, "h* s (h | s)*"])
        out = capsys.readouterr().out
        assert code == 0
        assert "engine: general" in out


class TestStatsCommand:
    def test_stats(self, graph_file, capsys):
        code = main(["stats", graph_file])
        out = capsys.readouterr().out
        assert code == 0
        assert "vertices: 5" in out
        assert "edges: 8" in out
        assert "h" in out

    def test_missing_file(self, capsys):
        code = main(["stats", "/nonexistent/file.json"])
        assert code == 2


class TestPatternCommand:
    def test_all_shortest_pattern(self, graph_file, capsys):
        code = main(
            ["pattern", graph_file,
             "ALL SHORTEST (Alix)-[h* s (h|s)*]->(Bob)"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "compiled RPQ" in out
        assert "λ = 3" in out
        assert out.count("-e") // 3 == 4  # Four 3-edge walks printed.

    def test_any_shortest_pattern(self, graph_file, capsys):
        code = main(
            ["pattern", graph_file,
             "ANY SHORTEST (Alix)-[:h* :s (:h|:s)*]->(Bob)"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("Alix -") == 1  # A single walk.

    def test_no_match(self, graph_file, capsys):
        code = main(["pattern", graph_file, "(Bob)-[h]->(Alix)"])
        assert code == 1
        assert "no matching walk" in capsys.readouterr().out

    def test_syntax_error_exit_code(self, graph_file, capsys):
        code = main(["pattern", graph_file, "(Alix)-[h]->("])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_pattern_limit(self, graph_file, capsys):
        code = main(
            ["pattern", graph_file,
             "ALL SHORTEST (Alix)-[h* s (h|s)*]->(Bob)", "--limit", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "stopped after 1" in out


class TestCountCommand:
    def test_counts_and_blowup(self, graph_file, capsys):
        code = main(["count", graph_file, "h* s (h | s)*", "Alix", "Bob"])
        out = capsys.readouterr().out
        assert code == 0
        assert "distinct shortest walks: 4" in out
        assert "shortest product paths" in out
        assert "total accepting runs" in out

    def test_no_match(self, graph_file, capsys):
        code = main(["count", graph_file, "h", "Bob", "Alix"])
        assert code == 1

    def test_unknown_vertex_is_input_error(self, graph_file, capsys):
        code = main(["count", graph_file, "h", "Nobody", "Bob"])
        assert code == 2


class TestBatchCommand:
    @pytest.fixture
    def requests_file(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        path.write_text(
            '{"query": "h* s (h | s)*", "source": "Alix", "target": "Bob",'
            ' "id": 1}\n'
            "# comments and blank lines are ignored\n"
            "\n"
            '{"query": "h* s (h | s)*", "source": "Alix", "target": "Eve",'
            ' "limit": 1, "id": 2}\n'
            '{"query": "h", "source": "Bob", "target": "Alix", "id": 3}\n'
        )
        return str(path)

    def test_round_trip(self, graph_file, requests_file, capsys):
        code = main(["batch", graph_file, requests_file])
        out = capsys.readouterr().out
        assert code == 0
        responses = [json.loads(line) for line in out.splitlines()]
        assert [r["id"] for r in responses] == [1, 2, 3]
        assert responses[0]["status"] == "ok"
        assert responses[0]["lam"] == 3
        assert len(responses[0]["walks"]) == 4
        assert responses[0]["walks"][0]["vertices"][0] == "Alix"
        # Paged request: one walk plus a resume cursor.
        assert len(responses[1]["walks"]) == 1
        assert responses[1]["next_cursor"] is not None
        # No matching walk is not an error.
        assert responses[2]["status"] == "empty"
        assert responses[2]["walks"] == []

    def test_cursor_resume_round_trip(self, graph_file, tmp_path, capsys):
        first = tmp_path / "page1.jsonl"
        first.write_text(
            '{"query": "h* s (h | s)*", "source": "Alix", "target": "Bob",'
            ' "limit": 2}\n'
        )
        code = main(["batch", graph_file, str(first)])
        assert code == 0
        page1 = json.loads(capsys.readouterr().out.splitlines()[0])
        second = tmp_path / "page2.jsonl"
        second.write_text(
            json.dumps(
                {
                    "query": "h* s (h | s)*",
                    "source": "Alix",
                    "target": "Bob",
                    "cursor": page1["next_cursor"],
                }
            )
            + "\n"
        )
        code = main(["batch", graph_file, str(second)])
        assert code == 0
        page2 = json.loads(capsys.readouterr().out.splitlines()[0])
        edges = [w["edges"] for w in page1["walks"] + page2["walks"]]
        assert len(edges) == 4 and len({tuple(e) for e in edges}) == 4

    def test_request_error_exit_code(self, graph_file, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"query": "h |", "source": "Alix", "target": "Bob"}\n'
            '{"query": "h", "source": "Alix", "target": "Dan"}\n'
        )
        code = main(["batch", graph_file, str(path)])
        out = capsys.readouterr().out
        assert code == 1  # Batch ran; one request errored.
        statuses = [json.loads(line)["status"] for line in out.splitlines()]
        assert statuses == ["error", "ok"]

    def test_malformed_jsonl_is_input_error(self, graph_file, tmp_path, capsys):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"query": "h", "source": "Alix"\n')
        code = main(["batch", graph_file, str(path)])
        assert code == 2
        assert "line 1" in capsys.readouterr().err

    def test_missing_requests_file(self, graph_file, capsys):
        code = main(["batch", graph_file, "/nonexistent/requests.jsonl"])
        assert code == 2

    def test_stats_flag(self, graph_file, requests_file, capsys):
        code = main(["batch", graph_file, requests_file, "--stats"])
        captured = capsys.readouterr()
        assert code == 0
        stats = json.loads(captured.err)
        assert stats["requests"] == 3
        assert stats["plan_cache"]["hits"] >= 1

    def test_workers_and_mode_flags(self, graph_file, requests_file, capsys):
        for extra in (["--workers", "1"], ["--mode", "iterative"]):
            code = main(["batch", graph_file, requests_file] + extra)
            out = capsys.readouterr().out
            assert code == 0
            first = json.loads(out.splitlines()[0])
            assert first["status"] == "ok" and len(first["walks"]) == 4

    def test_cold_cache_flags(self, graph_file, requests_file, capsys):
        code = main(
            ["batch", graph_file, requests_file,
             "--plan-cache", "0", "--annotation-cache", "0", "--stats"]
        )
        captured = capsys.readouterr()
        assert code == 0
        stats = json.loads(captured.err)
        assert stats["plan_cache"]["hits"] == 0
        assert stats["annotation_cache"]["hits"] == 0
        first = json.loads(captured.out.splitlines()[0])
        assert first["status"] == "ok" and len(first["walks"]) == 4


class TestJsonOutput:
    def test_query_json(self, graph_file, capsys):
        code = main(
            ["query", graph_file, "h* s (h | s)*", "Alix", "Bob", "--json"]
        )
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)
        assert payload["lam"] == 3
        assert len(payload["walks"]) == 4
        first = payload["walks"][0]
        assert first["vertices"][0] == "Alix"
        assert first["vertices"][-1] == "Bob"
        assert first["length"] == 3
        assert len(first["labels"]) == 3

    def test_query_json_respects_limit(self, graph_file, capsys):
        code = main(
            ["query", graph_file, "h* s (h | s)*", "Alix", "Bob",
             "--json", "--limit", "2"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert len(payload["walks"]) == 2

    def test_query_json_no_match(self, graph_file, capsys):
        code = main(["query", graph_file, "h", "Bob", "Alix", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["lam"] is None and payload["walks"] == []

    def test_query_json_all_targets(self, graph_file, capsys):
        code = main(
            ["query", graph_file, "h s?", "Alix", "--all-targets", "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["targets"]
        for info in payload["targets"].values():
            assert info["lam"] >= 1
            assert info["walks"]

    def test_query_json_cheapest(self, tmp_path, capsys):
        from repro.graph.builder import GraphBuilder

        builder = GraphBuilder()
        builder.add_edge("a", "b", ["x"], cost=2)
        builder.add_edge("a", "b", ["x"], cost=5)
        path = tmp_path / "costs.txt"
        save_edge_list(builder.build(), path)
        code = main(
            ["query", str(path), "x", "a", "b", "--cheapest", "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["lam"] == 2  # Cheapest cost.
        assert len(payload["walks"]) == 1
        assert payload["walks"][0]["cost"] == 2
