"""Unit tests for the GQL-flavoured path-pattern front-end."""

import pytest
from hypothesis import given, settings

from repro.exceptions import PatternSyntaxError
from repro.query.pattern import parse_pattern
from repro.query.rpq import rpq
from repro.workloads.fraud import example9_graph, example9_query

from tests.conftest import small_graphs


class TestParsing:
    def test_basic_pattern(self):
        p = parse_pattern("(Alix)-[h* s (h|s)*]->(Bob)")
        assert p.source == "Alix"
        assert p.target == "Bob"
        assert p.mode == "all"
        assert p.regex == "(h* s (h|s)*)"

    def test_modes(self):
        assert parse_pattern("ANY SHORTEST (a)-[x]->(b)").mode == "any"
        assert parse_pattern("ALL SHORTEST (a)-[x]->(b)").mode == "all"
        assert parse_pattern("SHORTEST (a)-[x]->(b)").mode == "all"
        assert parse_pattern("any shortest (a)-[x]->(b)").mode == "any"

    def test_gql_sigils_stripped(self):
        p = parse_pattern("(a)-[:h | :s]->(b)")
        assert p.regex == "(h |  s)"
        assert p.rpq.automaton.accepts(["h"])
        assert p.rpq.automaton.accepts(["s"])

    def test_multi_segment_concatenation(self):
        p = parse_pattern("(a)-[h]->()-[s]->(b)")
        assert p.regex == "(h) (s)"
        assert p.rpq.automaton.accepts(["h", "s"])
        assert not p.rpq.automaton.accepts(["s", "h"])

    def test_segment_quantifiers(self):
        p = parse_pattern("(a)-[h]->*()-[s]->{1,3}(b)")
        assert p.regex == "(h)* (s){1,3}"
        nfa = p.rpq.automaton
        assert nfa.accepts(["s"])
        assert nfa.accepts(["h", "h", "s", "s", "s"])
        assert not nfa.accepts(["h"])
        assert not nfa.accepts(["s", "s", "s", "s"])

    def test_any_edge_arrow(self):
        p = parse_pattern("(a)-->(b)")
        assert p.regex == "(.)"
        p2 = parse_pattern("(a)-->+(b)")
        assert p2.regex == "(.)+"

    def test_exact_repetition_quantifier(self):
        p = parse_pattern("(a)-[h]->{3}(b)")
        assert p.regex == "(h){3}"
        nfa = p.rpq.automaton
        assert nfa.accepts(["h", "h", "h"])
        assert not nfa.accepts(["h", "h"])
        assert not nfa.accepts(["h"] * 4)

    def test_open_ended_quantifier(self):
        p = parse_pattern("(a)-[h]->{2,}(b)")
        assert p.regex == "(h){2,}"
        nfa = p.rpq.automaton
        assert not nfa.accepts(["h"])
        assert nfa.accepts(["h", "h"])
        assert nfa.accepts(["h"] * 7)

    def test_quoted_labels_protect_punctuation(self):
        p = parse_pattern("(a)-['x:]y']->(b)")
        assert p.rpq.automaton.accepts(["x:]y"])

    def test_whitespace_freedom(self):
        p = parse_pattern("  ALL   SHORTEST ( a )  -[ h ]-> ( b ) ")
        assert (p.source, p.target) == ("a", "b")


class TestParseErrors:
    @pytest.mark.parametrize(
        "bad, message",
        [
            ("(a)-[h]->(b", "unterminated node"),
            ("(a)-[h->(b)", "unterminated"),
            ("(a)-[]->(b)", "empty edge"),
            ("(a)~[h]~>(b)", "expected"),
            ("()-[h]->(b)", "source endpoint"),
            ("(a)-[h]->()", "target endpoint"),
            ("(a)-[h]->(mid)-[s]->(b)", "anonymous"),
            ("ANY (a)-[h]->(b)", "SHORTEST"),
            ("(a)-[h]->{x}(b)", "quantifier"),
            ("(a)-[h]->{1,2,3}(b)", "quantifier"),
            ("(a)-[h]->{,2}(b)", "quantifier"),
        ],
    )
    def test_errors(self, bad, message):
        with pytest.raises(PatternSyntaxError, match=message):
            parse_pattern(bad)

    def test_error_positions_recorded(self):
        with pytest.raises(PatternSyntaxError) as info:
            parse_pattern("(a)-[h]->(mid)-[s]->(b)")
        assert info.value.position == 9


class TestExecution:
    def test_all_shortest_matches_example9(self):
        p = parse_pattern("ALL SHORTEST (Alix)-[h* s (h|s)*]->(Bob)")
        walks = list(p.run(example9_graph()))
        assert len(walks) == 4
        reference = list(
            rpq(example9_query).shortest_walks(example9_graph(), "Alix", "Bob")
        )
        assert [w.edges for w in walks] == [w.edges for w in reference]

    def test_any_shortest_returns_first(self):
        graph = example9_graph()
        p = parse_pattern("ANY SHORTEST (Alix)-[h* s (h|s)*]->(Bob)")
        walks = list(p.run(graph))
        assert len(walks) == 1
        reference = rpq(example9_query).first(graph, "Alix", "Bob", 1)
        assert walks[0].edges == reference[0].edges

    def test_sigil_style_equivalent(self):
        graph = example9_graph()
        plain = parse_pattern("(Alix)-[h* s (h|s)*]->(Bob)")
        gql = parse_pattern("(Alix)-[:h* :s (:h|:s)*]->(Bob)")
        assert [w.edges for w in plain.run(graph)] == [
            w.edges for w in gql.run(graph)
        ]

    def test_multi_hop_fixed_length(self):
        graph = example9_graph()
        p = parse_pattern("(Alix)-->()-->()-->(Bob)")
        walks = list(p.run(graph))
        # The pattern pins the length to exactly 3 edges; Figure 1 has
        # exactly four 3-edge walks from Alix to Bob (they coincide
        # with Example 9's four answers — see the paper's discussion).
        assert len(walks) == 4
        assert all(w.length == 3 for w in walks)

    def test_engine_exposed(self):
        p = parse_pattern("(Alix)-[h* s (h|s)*]->(Bob)")
        engine = p.engine(example9_graph())
        assert engine.lam == 3

    def test_repr_roundtrip_information(self):
        p = parse_pattern("ANY SHORTEST (a)-[h]->(b)")
        assert "ANY SHORTEST" in repr(p)
        assert "(a)" in repr(p) and "(b)" in repr(p)


class TestProperties:
    @given(small_graphs())
    @settings(max_examples=40, deadline=None)
    def test_pattern_equals_rpq_on_random_graphs(self, graph):
        """The pattern front-end is a faithful wrapper over rpq()."""
        if graph.vertex_count < 2:
            return
        src = graph.vertex_name(0)
        tgt = graph.vertex_name(graph.vertex_count - 1)
        p = parse_pattern(f"ALL SHORTEST ({src})-[(a|b)* c?]->({tgt})")
        got = [w.edges for w in p.run(graph)]
        expected = [
            w.edges
            for w in rpq("(a|b)* c?").shortest_walks(graph, src, tgt)
        ]
        assert got == expected
