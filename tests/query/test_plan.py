"""Unit tests for the query planner."""

from repro.automata import NFA, regex_to_nfa
from repro.graph.generators import chain, grid
from repro.query.plan import analyze
from repro.workloads.fraud import example9_automaton, example9_graph


class TestEngineSelection:
    def test_simple_setting_detected(self):
        g = grid(2, 2)
        dfa = regex_to_nfa("r d", method="glushkov")
        plan = analyze(g, dfa)
        assert plan.engine == "simple"
        assert plan.single_labeled and plan.deterministic

    def test_multilabel_forces_general(self):
        plan = analyze(example9_graph(), example9_automaton())
        assert plan.engine == "general"
        assert not plan.single_labeled
        assert plan.deterministic  # The automaton itself is a DFA.

    def test_nondeterministic_query_forces_general(self):
        g = chain(3)
        nfa = NFA(2)
        nfa.add_transition(0, "a", 0)
        nfa.add_transition(0, "a", 1)
        nfa.set_initial(0)
        nfa.set_final(1)
        plan = analyze(g, nfa)
        assert plan.engine == "general"
        assert not plan.deterministic

    def test_unambiguity_reported(self):
        plan = analyze(example9_graph(), example9_automaton())
        assert plan.unambiguous  # Deterministic implies unambiguous.

    def test_ambiguous_detected(self):
        g = chain(2)
        nfa = NFA(3)
        nfa.add_transition(0, "a", 1)
        nfa.add_transition(0, "a", 2)
        nfa.set_initial(0)
        nfa.set_final(1, 2)
        plan = analyze(g, nfa)
        assert not plan.unambiguous

    def test_ambiguity_check_can_be_disabled(self):
        g = chain(2)
        nfa = NFA(3)
        nfa.add_transition(0, "a", 1)
        nfa.add_transition(0, "a", 2)
        nfa.set_initial(0)
        nfa.set_final(1, 2)
        plan = analyze(g, nfa, check_ambiguity=False)
        assert not plan.unambiguous  # Reported pessimistically.

    def test_epsilon_flag(self):
        g = chain(2)
        plan = analyze(g, regex_to_nfa("a a"))  # Thompson: ε present.
        assert plan.has_epsilon


class TestExplain:
    def test_explain_mentions_engine_and_sizes(self):
        plan = analyze(example9_graph(), example9_automaton())
        text = plan.explain()
        assert "general" in text
        assert str(plan.graph_size) in text
        assert "nondeterminism in the data" in text

    def test_explain_simple(self):
        plan = analyze(grid(2, 2), regex_to_nfa("r d", method="glushkov"))
        assert "simple" in plan.explain()
        assert "O(λ)" in plan.explain()
