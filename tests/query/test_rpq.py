"""Unit tests for the rpq() front-end."""

import pytest

from repro.exceptions import RegexSyntaxError
from repro.query import rpq
from repro.workloads.fraud import example9_graph


@pytest.fixture
def graph():
    return example9_graph()


class TestCompilation:
    def test_size_is_ast_size(self):
        q = rpq("h* s (h | s)*")
        assert q.size >= 5

    def test_method_selection(self):
        thompson = rpq("a b | c")
        glushkov = rpq("a b | c", method="glushkov")
        assert thompson.automaton.has_epsilon
        assert not glushkov.automaton.has_epsilon

    def test_syntax_errors_propagate(self):
        with pytest.raises(RegexSyntaxError):
            rpq("a |")

    def test_repr(self):
        assert "h* s" in repr(rpq("h* s"))


class TestExecution:
    def test_shortest_walks(self, graph):
        walks = list(rpq("h* s (h | s)*").shortest_walks(graph, "Alix", "Bob"))
        assert len(walks) == 4

    def test_lam_and_count(self, graph):
        q = rpq("h* s (h | s)*")
        assert q.lam(graph, "Alix", "Bob") == 3
        assert q.count(graph, "Alix", "Bob") == 4
        assert q.lam(graph, "Bob", "Alix") is None
        assert q.count(graph, "Bob", "Alix") == 0

    def test_first(self, graph):
        q = rpq("h* s (h | s)*")
        assert len(q.first(graph, "Alix", "Bob", 2)) == 2

    def test_multiplicity(self, graph):
        q = rpq("h* s (h | s)*")
        pairs = list(
            q.shortest_walks_with_multiplicity(graph, "Alix", "Bob")
        )
        assert sorted(m for _, m in pairs) == [1, 2, 2, 3]

    def test_to_all_targets(self, graph):
        mt = rpq("h* s (h | s)*").to_all_targets(graph, "Alix")
        assert sorted(mt.reached_target_names()) == [
            "Bob",
            "Cassie",
            "Dan",
            "Eve",
        ]

    def test_cheapest_walks(self):
        from repro.graph import GraphBuilder

        b = GraphBuilder()
        b.add_edge("s", "t", ["a"], cost=9)
        b.add_edge("s", "t", ["a"], cost=3)
        walks = list(rpq("a").cheapest_walks(b.build(), "s", "t"))
        assert len(walks) == 1 and walks[0].cost() == 3

    def test_reusable_across_graphs(self, graph):
        from repro.graph.generators import chain

        q = rpq("(h | a)+")
        assert q.count(graph, "Alix", "Cassie") >= 1
        other = chain(2, labels=("a",))
        assert q.count(other, "v0", "v2") == 1

    def test_plan(self, graph):
        plan = rpq("h* s (h | s)*").plan(graph)
        assert plan.engine == "general"

    def test_engine_reuse(self, graph):
        engine = rpq("h* s (h | s)*").engine(graph, "Alix", "Bob")
        assert engine.count() == engine.count() == 4

    def test_wildcard_query(self, graph):
        # Any two transfers from Alix to Eve.
        walks = list(rpq(". .").shortest_walks(graph, "Alix", "Eve"))
        assert len(walks) == 3  # e1e5, e1e6, e2e4.

    def test_quoted_label_query(self):
        from repro.graph import GraphBuilder

        b = GraphBuilder()
        b.add_edge("x", "y", ["high value"])
        walks = list(rpq("'high value'").shortest_walks(b.build(), "x", "y"))
        assert len(walks) == 1
