"""Typed ``invalid_delta`` error mapping through the service layer.

A malformed mutation op must surface as a *structured* error — the
``code="invalid_delta"`` field on the response for directly-submitted
requests, a line-numbered :class:`RequestError` for JSONL batch files
— never as the generic "internal error" backstop a leaked
``KeyError``/``TypeError`` used to produce.
"""

from __future__ import annotations

import pytest

from repro.graph.builder import GraphBuilder
from repro.service.requests import (
    MutationRequest,
    RequestError,
    read_requests_jsonl,
)
from repro.service.service import QueryService


def _graph():
    builder = GraphBuilder()
    builder.add_edge("a", "b", ["x"])
    builder.add_edge("b", "c", ["x"])
    return builder.build()


@pytest.fixture
def service():
    svc = QueryService()
    svc.register_graph("g", _graph())
    return svc


_BAD_OPS = [
    {"op": "explode"},
    {"op": ["add_vertex"]},
    {"op": "add_edge", "src": "a", "tgt": "b"},
    {"op": "remove_edge", "edge": "not an id"},
    {"op": "add_vertex", "name": "ok", "typo": 1},
]


class TestExecuteMutation:
    @pytest.mark.parametrize("bad_op", _BAD_OPS)
    def test_malformed_op_maps_to_invalid_delta(
        self, service, bad_op
    ) -> None:
        request = MutationRequest(ops=[bad_op], graph="g", id="req-1")
        response = service.execute_mutation(request)
        assert response.status == "error"
        assert response.code == "invalid_delta"
        assert response.id == "req-1"
        # The category must also ride the wire form.
        out = response.to_dict()
        assert out["code"] == "invalid_delta"
        assert "internal error" not in out["error"]

    def test_valid_mutation_has_no_code(self, service) -> None:
        request = MutationRequest(
            ops=[{"op": "add_edge", "src": "c", "tgt": "a", "labels": ["y"]}],
            graph="g",
        )
        response = service.execute_mutation(request)
        assert response.status == "ok"
        assert response.code is None
        assert "code" not in response.to_dict()

    def test_uncategorized_errors_keep_no_code(self, service) -> None:
        # A well-formed op hitting a graph-level problem is a plain
        # error, not an invalid_delta.
        request = MutationRequest(
            ops=[{"op": "remove_edge", "edge": 999}], graph="g"
        )
        response = service.execute_mutation(request)
        assert response.status == "error"
        assert response.code is None

    def test_batch_does_not_abort_on_invalid_delta(self, service) -> None:
        responses = service.execute_batch(
            [
                MutationRequest(ops=[{"op": "explode"}], graph="g", id=1),
                MutationRequest(
                    ops=[
                        {
                            "op": "add_edge",
                            "src": "c",
                            "tgt": "a",
                            "labels": ["y"],
                        }
                    ],
                    graph="g",
                    id=2,
                ),
            ]
        )
        assert [r.status for r in responses] == ["error", "ok"]
        assert responses[0].code == "invalid_delta"


class TestJsonlMapping:
    def test_malformed_op_line_is_line_numbered(self) -> None:
        lines = [
            '{"mutate": [{"op": "add_vertex", "name": "ok"}]}',
            '{"mutate": [{"op": "explode"}]}',
        ]
        with pytest.raises(RequestError, match=r"line 2:.*explode"):
            list(read_requests_jsonl(lines))

    def test_valid_lines_parse(self) -> None:
        lines = [
            '{"mutate": [{"op": "add_vertex", "name": "ok"}]}',
            '{"query": "x", "source": "a", "target": "b"}',
        ]
        requests = list(read_requests_jsonl(lines))
        assert len(requests) == 2
        assert requests[0].parsed_ops is not None
