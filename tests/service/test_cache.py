"""Unit tests for the service LRU cache (thread-safety included)."""

import threading
import time

import pytest

from repro.service.cache import LRUCache


class TestBasics:
    def test_get_miss_then_put_then_hit(self):
        cache = LRUCache(2)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.misses == 1 and cache.stats.hits == 1

    def test_lru_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # Freshen "a": "b" becomes the LRU entry.
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_put_refreshes_existing_key(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # Refresh, not insert: no eviction.
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert cache.get("b") is None

    def test_capacity_zero_disables_storage(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        calls = []
        assert cache.get_or_create("a", lambda: calls.append(1) or 7) == 7
        assert cache.get_or_create("a", lambda: calls.append(1) or 8) == 8
        assert len(calls) == 2 and len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_get_or_create_caches_and_counts(self):
        cache = LRUCache(4)
        calls = []
        for _ in range(3):
            value = cache.get_or_create("k", lambda: calls.append(1) or 42)
            assert value == 42
        assert len(calls) == 1
        assert cache.stats.misses == 1 and cache.stats.hits == 2
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_factory_exception_propagates_and_caches_nothing(self):
        cache = LRUCache(4)

        def boom():
            raise RuntimeError("nope")

        with pytest.raises(RuntimeError):
            cache.get_or_create("k", boom)
        assert len(cache) == 0
        # The key is usable again after the failed build.
        assert cache.get_or_create("k", lambda: 1) == 1

    def test_drop_where(self):
        cache = LRUCache(8)
        cache.put(("g1", 1), "a")
        cache.put(("g1", 2), "b")
        cache.put(("g2", 1), "c")
        dropped = cache.drop_where(lambda k: k[0] == "g1")
        assert dropped == 2
        assert cache.get(("g2", 1)) == "c"
        assert cache.get(("g1", 1)) is None

    def test_clear(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0 and cache.get("a") is None


class TestSingleFlight:
    def test_concurrent_misses_build_once(self):
        cache = LRUCache(4)
        builds = []
        gate = threading.Event()

        def factory():
            gate.wait(timeout=5)
            builds.append(threading.get_ident())
            time.sleep(0.01)
            return "value"

        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(
                    cache.get_or_create("k", factory)
                )
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        time.sleep(0.05)  # Let every thread reach the wait/miss point.
        gate.set()
        for t in threads:
            t.join(timeout=5)
        assert results == ["value"] * 8
        assert len(builds) == 1
        # One logical build: one miss, zero hits for the followers.
        assert cache.stats.misses == 1

    def test_concurrent_failure_propagates_to_all_waiters(self):
        cache = LRUCache(4)
        gate = threading.Event()
        errors = []

        def factory():
            gate.wait(timeout=5)
            raise ValueError("build failed")

        def worker():
            try:
                cache.get_or_create("k", factory)
            except ValueError as exc:
                errors.append(str(exc))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        time.sleep(0.05)
        gate.set()
        for t in threads:
            t.join(timeout=5)
        assert errors == ["build failed"] * 4
        assert len(cache) == 0

    def test_distinct_keys_build_concurrently(self):
        cache = LRUCache(8)
        started = threading.Barrier(2, timeout=5)

        def factory(v):
            def build():
                # Both factories must be in flight at once to pass the
                # barrier — proves key builds do not serialize globally.
                started.wait()
                return v

            return build

        results = {}
        threads = [
            threading.Thread(
                target=lambda k=k: results.__setitem__(
                    k, cache.get_or_create(k, factory(k))
                )
            )
            for k in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert results == {"a": "a", "b": "b"}
