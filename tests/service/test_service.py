"""End-to-end tests for the batched :class:`QueryService`."""

import json
import threading

import pytest

from repro.core.engine import DistinctShortestWalks
from repro.graph.builder import GraphBuilder
from repro.service import (
    MutationRequest,
    QueryRequest,
    QueryService,
    RequestError,
    read_requests_jsonl,
)
from repro.workloads.fraud import example9_graph
from repro.workloads.worstcase import diamond_chain

QUERY = "h* s (h | s)*"


@pytest.fixture
def service():
    svc = QueryService()
    svc.register_graph("fraud", example9_graph())
    return svc


def _edges(response):
    return [tuple(w["edges"]) for w in response.walks]


def _engine_edges(graph, expression, source, target, mode="iterative"):
    from repro.query import rpq

    engine = DistinctShortestWalks(
        graph, rpq(expression).automaton, source, target, mode=mode
    )
    return [w.edges for w in engine.enumerate()]


class TestExecution:
    def test_matches_direct_engine(self, service):
        response = service.execute(QueryRequest(QUERY, "Alix", "Bob"))
        assert response.status == "ok"
        assert response.lam == 3
        assert _edges(response) == _engine_edges(
            example9_graph(), QUERY, "Alix", "Bob"
        )

    def test_mode_overrides_agree(self, service):
        base = service.execute(QueryRequest(QUERY, "Alix", "Bob"))
        for mode in ("iterative", "recursive", "memoryless"):
            got = service.execute(
                QueryRequest(QUERY, "Alix", "Bob", mode=mode)
            )
            assert _edges(got) == _edges(base), mode

    def test_no_matching_walk_is_empty_status(self, service):
        response = service.execute(QueryRequest("h", "Bob", "Alix"))
        assert response.status == "empty"
        assert response.lam is None and response.walks == []

    def test_trivial_lambda_zero_walk(self, service):
        response = service.execute(QueryRequest("h*", "Alix", "Alix"))
        assert response.status == "ok"
        assert response.lam == 0
        assert _edges(response) == [()]

    def test_unknown_vertex_is_error_status(self, service):
        response = service.execute(QueryRequest(QUERY, "Nobody", "Bob"))
        assert response.status == "error"
        assert "Nobody" in response.error

    def test_bad_regex_is_error_status(self, service):
        response = service.execute(QueryRequest("h |", "Alix", "Bob"))
        assert response.status == "error"

    def test_unknown_graph_is_error_status(self, service):
        response = service.execute(
            QueryRequest(QUERY, "Alix", "Bob", graph="other")
        )
        assert response.status == "error"
        assert "other" in response.error

    def test_request_id_echoed(self, service):
        response = service.execute(
            QueryRequest(QUERY, "Alix", "Bob", id="req-7")
        )
        assert response.id == "req-7"

    def test_validation_error_is_error_status(self, service):
        response = service.execute(
            QueryRequest(QUERY, "Alix", "Bob", mode="warp")
        )
        assert response.status == "error"
        assert "warp" in response.error


class TestPagination:
    def test_cursor_pages_reassemble_full_enumeration(self, service):
        full = service.execute(QueryRequest(QUERY, "Alix", "Bob"))
        pages = []
        cursor = None
        for _ in range(10):
            page = service.execute(
                QueryRequest(QUERY, "Alix", "Bob", limit=1, cursor=cursor)
            )
            if not page.walks:
                break
            pages.extend(_edges(page))
            cursor = page.next_cursor
            if cursor is None:
                break
        assert pages == _edges(full)

    def test_cursor_portable_across_modes(self, service):
        first = service.execute(
            QueryRequest(QUERY, "Alix", "Bob", limit=2, mode="memoryless")
        )
        rest_eager = service.execute(
            QueryRequest(
                QUERY, "Alix", "Bob",
                cursor=first.next_cursor, mode="iterative",
            )
        )
        rest_memoryless = service.execute(
            QueryRequest(
                QUERY, "Alix", "Bob",
                cursor=first.next_cursor, mode="memoryless",
            )
        )
        assert _edges(rest_eager) == _edges(rest_memoryless)
        full = service.execute(QueryRequest(QUERY, "Alix", "Bob"))
        assert _edges(first) + _edges(rest_eager) == _edges(full)

    def test_offset(self, service):
        full = service.execute(QueryRequest(QUERY, "Alix", "Bob"))
        page = service.execute(
            QueryRequest(QUERY, "Alix", "Bob", offset=2)
        )
        assert _edges(page) == _edges(full)[2:]
        assert page.skipped == 2

    def test_exhausted_page_has_no_cursor(self, service):
        response = service.execute(
            QueryRequest(QUERY, "Alix", "Bob", limit=100)
        )
        assert response.next_cursor is None

    def test_exact_boundary_page_has_no_cursor(self, service):
        full = service.execute(QueryRequest(QUERY, "Alix", "Bob"))
        response = service.execute(
            QueryRequest(QUERY, "Alix", "Bob", limit=len(full.walks))
        )
        assert len(response.walks) == len(full.walks)
        assert response.next_cursor is None

    def test_out_of_range_cursor_is_error_not_crash(self, service):
        for mode in ("memoryless", "iterative", "recursive"):
            response = service.execute(
                QueryRequest(QUERY, "Alix", "Bob", cursor=[999999], mode=mode)
            )
            assert response.status == "error", mode
            assert "cursor" in response.error

    def test_negative_cursor_id_rejected(self, service):
        response = service.execute(
            QueryRequest(QUERY, "Alix", "Bob", cursor=[-1])
        )
        assert response.status == "error"

    def test_non_walk_cursor_is_error(self, service):
        # Edges 6 and 0 exist but do not concatenate — and even a
        # wrong-length prefix like [0] must not pretend exhaustion.
        for cursor in ([6, 0, 0], [0]):
            for mode in ("memoryless", "iterative"):
                response = service.execute(
                    QueryRequest(
                        QUERY, "Alix", "Bob", cursor=cursor, mode=mode
                    )
                )
                assert response.status == "error", (cursor, mode)

    def test_foreign_walk_cursor_is_error_in_eager_mode(self, service):
        # [1, 4, 6] (Dan→Cassie→Eve→Bob) is a real λ-length walk
        # ending at Bob, but it is not an answer of the query (wrong
        # source) — the eager skip must report it rather than return
        # an empty "exhausted" page.
        response = service.execute(
            QueryRequest(QUERY, "Alix", "Bob", cursor=[1, 4, 6],
                         mode="iterative")
        )
        assert response.status == "error"
        assert response.walks == []

    def test_batch_survives_poison_cursor(self, service):
        requests = [
            QueryRequest(QUERY, "Alix", "Bob", cursor=[999999], id="bad"),
            QueryRequest(QUERY, "Alix", "Bob", id="good"),
        ]
        responses = service.execute_batch(requests, max_workers=2)
        assert [r.status for r in responses] == ["error", "ok"]

    def test_zero_limit_rejected(self, service):
        response = service.execute(
            QueryRequest(QUERY, "Alix", "Bob", limit=0)
        )
        assert response.status == "error"

    def test_timeout_returns_partial_page_and_resume_cursor(self):
        svc = QueryService()
        graph, nfa, s, t = diamond_chain(12, parallel=2)
        svc.register_graph("diamond", graph)
        response = svc.execute(
            QueryRequest("a*", s, t, timeout_ms=0.0)
        )
        assert response.status == "timeout"
        # The 2**12-answer enumeration cannot finish in 0 ms; the
        # partial page resumes from the returned cursor.
        assert len(response.walks) < 2 ** 12
        resumed = svc.execute(
            QueryRequest("a*", s, t, cursor=response.next_cursor, limit=3)
        )
        assert resumed.status == "ok" and len(resumed.walks) == 3


class TestCachingAndInvalidation:
    def test_plan_and_annotation_hits_on_repeat(self, service):
        first = service.execute(QueryRequest(QUERY, "Alix", "Bob"))
        assert first.cached == {"plan": False, "annotation": False}
        repeat = service.execute(QueryRequest(QUERY, "Alix", "Bob"))
        assert repeat.cached == {"plan": True, "annotation": True}

    def test_annotation_shared_across_targets(self, service):
        service.execute(QueryRequest(QUERY, "Alix", "Bob"))
        other_target = service.execute(QueryRequest(QUERY, "Alix", "Eve"))
        # Different target, same (query, source): annotation cache hit.
        assert other_target.cached["annotation"] is True
        assert other_target.status == "ok"

    def test_reregistration_bumps_version_and_invalidates(self):
        svc = QueryService()
        builder = GraphBuilder()
        builder.add_edge("a", "b", ["x"])
        assert svc.register_graph("g", builder.build()) == 1
        before = svc.execute(QueryRequest("x | y", "a", "b", graph="g"))
        assert before.lam == 1 and len(before.walks) == 1

        grown = GraphBuilder()
        grown.add_edge("a", "b", ["x"])
        grown.add_edge("a", "b", ["y"])
        assert svc.register_graph("g", grown.build()) == 2
        assert svc.graph_version("g") == 2
        after = svc.execute(QueryRequest("x | y", "a", "b", graph="g"))
        # A stale cached annotation would still report one answer.
        assert len(after.walks) == 2
        assert after.cached == {"plan": False, "annotation": False}

    def test_cold_path_applies_cursor(self):
        svc = QueryService(plan_cache_size=0, annotation_cache_size=0)
        svc.register_graph("fraud", example9_graph())
        page1 = svc.execute(QueryRequest(QUERY, "Alix", "Bob", limit=2))
        assert page1.next_cursor is not None
        page2 = svc.execute(
            QueryRequest(QUERY, "Alix", "Bob", cursor=page1.next_cursor)
        )
        combined = _edges(page1) + _edges(page2)
        assert combined == _engine_edges(example9_graph(), QUERY, "Alix", "Bob")

    def test_integer_vertex_names_resolve_once(self):
        # resolve_vertex prefers names over ids; a graph whose vertex
        # *names* are the integers 1 and 0 exposes any double
        # resolution (id 0 would re-resolve to the vertex *named* 0).
        builder = GraphBuilder()
        builder.add_vertex(1)
        builder.add_vertex(0)
        builder.add_edge(1, 0, ["a"])
        graph = builder.build()
        for sizes in ((128, 128), (0, 0)):
            svc = QueryService(
                plan_cache_size=sizes[0], annotation_cache_size=sizes[1]
            )
            svc.register_graph("ints", graph)
            response = svc.execute(QueryRequest("a", 1, 0))
            assert response.status == "ok", sizes
            assert response.lam == 1
            assert _edges(response) == [(0,)]

    def test_version_counter_never_reused_across_reregistration(self):
        svc = QueryService()
        builder = GraphBuilder()
        builder.add_edge("a", "b", ["x"])
        v1 = svc.register_graph("g", builder.build())
        svc.unregister_graph("g")
        v2 = svc.register_graph("g", builder.build())
        assert v2 > v1  # A stale in-flight build can never alias v2.

    def test_unregister_then_error(self, service):
        service.unregister_graph("fraud")
        response = service.execute(QueryRequest(QUERY, "Alix", "Bob"))
        assert response.status == "error"

    def test_cold_service_never_reports_cache_hits(self):
        svc = QueryService(plan_cache_size=0, annotation_cache_size=0)
        svc.register_graph("fraud", example9_graph())
        warm = QueryService()
        warm.register_graph("fraud", example9_graph())
        for _ in range(2):
            cold_resp = svc.execute(QueryRequest(QUERY, "Alix", "Bob"))
            warm_resp = warm.execute(QueryRequest(QUERY, "Alix", "Bob"))
            assert _edges(cold_resp) == _edges(warm_resp)
        assert cold_resp.cached == {"plan": False, "annotation": False}
        stats = svc.stats()
        assert stats["plan_cache"]["hits"] == 0
        assert stats["annotation_cache"]["hits"] == 0

    def test_stats_shape(self, service):
        service.execute(QueryRequest(QUERY, "Alix", "Bob"))
        service.execute(QueryRequest(QUERY, "Alix", "Bob"))
        stats = service.stats()
        assert stats["requests"] == 2
        assert stats["plan_cache"]["hit_rate"] == pytest.approx(0.5)
        assert stats["graphs"] == {"fraud": 1}
        json.dumps(stats)  # Must be JSON-serializable for the CLI.


class TestBatchExecutor:
    def test_batch_preserves_order_and_shares_caches(self, service):
        targets = ["Bob", "Cassie", "Dan", "Eve"] * 5
        requests = [
            QueryRequest(QUERY, "Alix", t, id=i)
            for i, t in enumerate(targets)
        ]
        responses = service.execute_batch(requests, max_workers=4)
        assert [r.id for r in responses] == list(range(len(targets)))
        for response, target in zip(responses, targets):
            assert response.status == "ok"
            assert _edges(response) == _engine_edges(
                example9_graph(), QUERY, "Alix", target
            ), target
        stats = service.stats()
        # One plan build, one annotation build, everything else hits.
        assert stats["plan_cache"]["misses"] == 1
        assert stats["annotation_cache"]["misses"] == 1
        assert stats["annotation_cache"]["hits"] == len(targets) - 1

    def test_batch_mixes_modes_and_errors(self, service):
        requests = [
            QueryRequest(QUERY, "Alix", "Bob", mode="iterative"),
            QueryRequest(QUERY, "Alix", "Bob", mode="recursive"),
            QueryRequest(QUERY, "Nobody", "Bob"),
            QueryRequest(QUERY, "Alix", "Bob", mode="memoryless"),
        ]
        responses = service.execute_batch(requests, max_workers=4)
        assert [r.status for r in responses] == [
            "ok", "ok", "error", "ok",
        ]
        assert _edges(responses[0]) == _edges(responses[1])
        assert _edges(responses[0]) == _edges(responses[3])

    def test_concurrent_first_use_single_flight(self):
        """Many threads, cold caches, one shared (query, source):
        the plan and annotation must be built exactly once."""
        svc = QueryService()
        graph, _, s, t = diamond_chain(8, parallel=2)
        svc.register_graph("diamond", graph, warm=False)
        barrier = threading.Barrier(6, timeout=10)
        results = []

        def worker():
            barrier.wait()
            results.append(
                svc.execute(QueryRequest("a*", s, t, limit=4))
            )

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(results) == 6
        expected = _edges(results[0])
        for response in results:
            assert response.status == "ok" and _edges(response) == expected
        stats = svc.stats()
        assert stats["plan_cache"]["misses"] == 1
        assert stats["annotation_cache"]["misses"] == 1


class TestRequestParsing:
    def test_jsonl_round_trip(self):
        lines = [
            '{"query": "h*", "source": "Alix", "target": "Bob"}',
            "# a comment",
            "",
            '{"query": "s", "source": "A", "target": "B", "limit": 3,'
            ' "cursor": [1, 2], "mode": "memoryless", "id": 9}',
        ]
        requests = list(read_requests_jsonl(lines))
        assert len(requests) == 2
        assert requests[0].query == "h*" and requests[0].limit is None
        assert requests[1].cursor == (1, 2) and requests[1].id == 9
        # to_dict drops defaults and survives a re-parse.
        again = QueryRequest.from_dict(requests[1].to_dict())
        assert again == requests[1]

    def test_invalid_json_names_line(self):
        with pytest.raises(RequestError, match="line 2"):
            list(
                read_requests_jsonl(
                    ['{"query": "a", "source": 1, "target": 2}', "{nope"]
                )
            )

    def test_unknown_field_rejected(self):
        with pytest.raises(RequestError, match="walk_limit"):
            QueryRequest.from_dict(
                {"query": "a", "source": 1, "target": 2, "walk_limit": 5}
            )

    def test_missing_field_rejected(self):
        with pytest.raises(RequestError, match="target"):
            QueryRequest.from_dict({"query": "a", "source": 1})

    def test_bad_knobs_rejected(self):
        for payload in (
            {"query": "a", "source": 1, "target": 2, "limit": -1},
            {"query": "a", "source": 1, "target": 2, "offset": -2},
            {"query": "a", "source": 1, "target": 2, "cursor": ["x"]},
            {"query": "a", "source": 1, "target": 2, "timeout_ms": -5},
            {"query": "", "source": 1, "target": 2},
        ):
            with pytest.raises(RequestError):
                QueryRequest.from_dict(payload)


class TestInternalErrorCode:
    """Unexpected exceptions surface as structured code="internal"."""

    def test_query_backstop_sets_internal_code(self, service, monkeypatch):
        def boom(request):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr(service, "_execute_checked", boom)
        response = service.execute(
            QueryRequest.from_dict(
                {"query": "h", "source": "Alix", "target": "Dan", "id": 4}
            )
        )
        assert response.status == "error"
        assert response.code == "internal"
        assert "engine exploded" in response.error
        assert response.id == 4
        assert response.to_dict()["code"] == "internal"

    def test_mutation_backstop_sets_internal_code(self, service, monkeypatch):
        def boom(*args, **kwargs):
            raise RuntimeError("owner exploded")

        monkeypatch.setattr(service._db, "mutate", boom)
        response = service.execute(
            MutationRequest.from_dict(
                {"mutate": [{"op": "add_vertex", "name": "Z"}],
                 "graph": "fraud"}
            )
        )
        assert response.status == "error"
        assert response.code == "internal"
        assert "owner exploded" in response.error

    def test_expected_errors_carry_no_internal_code(self, service):
        response = service.execute(
            QueryRequest.from_dict(
                {"query": "h", "source": "ghost", "target": "Dan"}
            )
        )
        assert response.status == "error"
        assert response.code is None
