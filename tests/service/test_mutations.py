"""The JSONL ``mutate`` request type and the CLI ``mutate`` subcommand."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.graph.builder import GraphBuilder
from repro.graph.io import load_json, save_json
from repro.live import LiveGraph
from repro.service import (
    MutationRequest,
    QueryRequest,
    QueryService,
    RequestError,
    read_requests_jsonl,
)


def _graph():
    b = GraphBuilder()
    b.add_edge("A", "B", ["h"])
    b.add_edge("B", "C", ["h"])
    b.add_edge("A", "C", ["s"])
    for i in range(6):  # Headroom below the auto-compact threshold.
        b.add_edge(f"p{i}", f"p{i+1}", ["pad"])
    return b.build()


def _service() -> QueryService:
    service = QueryService()
    service.register_graph("g", LiveGraph(_graph()))
    return service


class TestWireModel:
    def test_jsonl_dispatch(self) -> None:
        lines = [
            '{"query": "h+", "source": "A", "target": "C"}',
            '{"mutate": [{"op": "remove_edge", "edge": 0}]}',
            "# comment",
            '{"mutate": [{"op": "add_vertex", "name": "z"}],'
            ' "compact": "never", "id": 7}',
        ]
        parsed = list(read_requests_jsonl(lines))
        assert isinstance(parsed[0], QueryRequest)
        assert isinstance(parsed[1], MutationRequest)
        assert parsed[2].compact == "never" and parsed[2].id == 7

    def test_bad_ops_rejected_at_parse(self) -> None:
        with pytest.raises(RequestError):
            list(
                read_requests_jsonl(
                    ['{"mutate": [{"op": "explode"}]}']
                )
            )
        with pytest.raises(RequestError):
            MutationRequest(ops=[]).validate()
        with pytest.raises(RequestError):
            MutationRequest(
                ops=[{"op": "add_vertex", "name": "v"}], compact="later"
            ).validate()
        with pytest.raises(RequestError):
            list(
                read_requests_jsonl(
                    ['{"mutate": [{"op": "add_vertex", "name": "v"}],'
                     ' "extra": 1}']
                )
            )

    def test_round_trip(self) -> None:
        request = MutationRequest(
            ops=[{"op": "remove_edge", "edge": 3}], graph="g", id="m1"
        ).validate()
        again = read_requests_jsonl(
            [json.dumps(request.to_dict())]
        )
        assert next(iter(again)).to_dict() == request.to_dict()


class TestServiceExecution:
    def test_execute_mutation_and_requery(self) -> None:
        service = _service()
        response = service.execute(
            MutationRequest(
                ops=[
                    {
                        "op": "add_edge",
                        "src": "A",
                        "tgt": "C",
                        "labels": ["h"],
                    }
                ],
                id="w1",
            )
        )
        assert response.ok and response.status == "ok"
        assert response.id == "w1"
        assert response.result["added_edges"] == 1
        query = service.execute(QueryRequest("h+", "A", "C"))
        assert query.lam == 1

    def test_error_response_not_exception(self) -> None:
        service = _service()
        response = service.execute(
            MutationRequest(ops=[{"op": "remove_edge", "edge": 999}])
        )
        assert response.status == "error"
        assert "999" in response.error

    def test_stats_counters(self) -> None:
        service = _service()
        service.execute(QueryRequest("h+", "A", "C"))
        service.execute(
            MutationRequest(
                ops=[
                    {"op": "add_edge", "src": "A", "tgt": "C",
                     "labels": ["h"]},
                    {"op": "add_vertex", "name": "z"},
                ]
            )
        )
        stats = service.stats()
        assert stats["mutations"] == 1
        assert stats["mutation_ops"] == 2
        assert stats["requests"] == 2
        assert stats["evicted_annotations"] == 1

    def test_batch_barrier_read_your_writes(self) -> None:
        service = _service()
        requests = list(
            read_requests_jsonl(
                [
                    '{"query": "h+", "source": "A", "target": "C"}',
                    '{"mutate": [{"op": "add_edge", "src": "A",'
                    ' "tgt": "C", "labels": ["h"]}]}',
                    '{"query": "h+", "source": "A", "target": "C"}',
                    '{"query": "s", "source": "A", "target": "C"}',
                ]
            )
        )
        responses = service.execute_batch(requests, max_workers=4)
        assert [r.status for r in responses] == ["ok"] * 4
        assert responses[0].lam == 2  # Pre-barrier world.
        assert responses[2].lam == 1  # Post-barrier world.
        assert responses[3].lam == 1

    def test_mutation_on_plain_graph_promotes(self) -> None:
        service = QueryService()
        service.register_graph("g", _graph())
        response = service.execute(
            MutationRequest(
                ops=[{"op": "add_vertex", "name": "z"}]
            )
        )
        assert response.ok
        assert response.result["promoted"] is True


class TestCliMutate:
    def _write_inputs(self, tmp_path):
        graph_path = tmp_path / "g.json"
        save_json(_graph(), graph_path)
        ops_path = tmp_path / "ops.jsonl"
        ops_path.write_text(
            '{"op": "add_edge", "src": "C", "tgt": "D", "labels": ["h"]}\n'
            "# a comment line\n"
            '{"op": "remove_edge", "edge": 2}\n'
        )
        return graph_path, ops_path

    def test_mutate_prints_receipt(self, tmp_path, capsys) -> None:
        graph_path, ops_path = self._write_inputs(tmp_path)
        assert main(["mutate", str(graph_path), str(ops_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["added_edges"] == 1
        assert payload["removed_edges"] == 1
        assert payload["touched_labels"] == ["h", "s"]

    def test_mutate_save_round_trips(self, tmp_path, capsys) -> None:
        graph_path, ops_path = self._write_inputs(tmp_path)
        out_path = tmp_path / "updated.json"
        assert (
            main(
                [
                    "mutate",
                    str(graph_path),
                    str(ops_path),
                    "--save",
                    str(out_path),
                ]
            )
            == 0
        )
        updated = load_json(out_path)
        base = _graph()
        assert updated.edge_count == base.edge_count  # -1 +1.
        assert updated.has_vertex("D")
        # The saved graph is compacted: dense ids, queryable as usual.
        assert main(
            ["query", str(out_path), "h+", "B", "D"]
        ) == 0

    def test_mutate_bad_ops_exit_2(self, tmp_path, capsys) -> None:
        graph_path, _ = self._write_inputs(tmp_path)
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"op": "remove_edge"}\n')
        assert main(["mutate", str(graph_path), str(bad)]) == 2
        empty = tmp_path / "empty.jsonl"
        empty.write_text("# nothing\n")
        assert main(["mutate", str(graph_path), str(empty)]) == 2

    def test_batch_subcommand_accepts_mutations(
        self, tmp_path, capsys
    ) -> None:
        graph_path, _ = self._write_inputs(tmp_path)
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            '{"query": "h+", "source": "A", "target": "C"}\n'
            '{"mutate": [{"op": "add_edge", "src": "A", "tgt": "C",'
            ' "labels": ["h"]}]}\n'
            '{"query": "h+", "source": "A", "target": "C"}\n'
        )
        assert main(["batch", str(graph_path), str(requests)]) == 0
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        assert lines[0]["lam"] == 2
        assert lines[1]["status"] == "ok" and "result" in lines[1]
        assert lines[2]["lam"] == 1
