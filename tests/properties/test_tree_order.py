"""Properties of the backward-search tree T (Definitions 12 and 14).

The paper fixes not only *which* walks are returned but *in which
order*: children of a tree node are ordered by the ``TgtIdx`` of their
first edge (Definition 12, item 4), so the DFS emits answers in
lexicographic order of their reversed ``TgtIdx`` sequences.  These
tests pin that order — it is part of the spec the memoryless variant
(Theorem 18) relies on to resume — plus the certificate-set invariants
of Definition 14 / Lemma 22.
"""

from hypothesis import given, settings

from repro.core.engine import DistinctShortestWalks
from repro.workloads.fraud import example9_automaton, example9_graph

from tests.conftest import small_instances


def _reversed_tgt_idx(graph, walk):
    """The DFS sort key of an answer: TgtIdx from the target backwards."""
    return tuple(graph.tgt_idx(e) for e in reversed(walk.edges))


class TestEnumerationOrder:
    def test_example9_order_is_the_papers(self):
        """Children sorted by TgtIdx ⇒ w4, w1, w2, w3 for Example 9."""
        graph = example9_graph()
        engine = DistinctShortestWalks(
            graph, example9_automaton(), "Alix", "Bob"
        )
        keys = [_reversed_tgt_idx(graph, w) for w in engine.enumerate()]
        assert keys == sorted(keys)

    @given(small_instances())
    @settings(max_examples=80, deadline=None)
    def test_answers_sorted_by_reversed_tgt_idx(self, instance):
        graph, nfa, s, t = instance
        engine = DistinctShortestWalks(graph, nfa, s, t)
        keys = [_reversed_tgt_idx(graph, w) for w in engine.enumerate()]
        assert keys == sorted(keys)
        # Keys are unique: no walk is emitted twice, and two distinct
        # answers cannot share a key (same length, same TgtIdx at every
        # position ⇒ same edges — Remark 13).
        assert len(keys) == len(set(keys))

    @given(small_instances(allow_epsilon=True))
    @settings(max_examples=40, deadline=None)
    def test_order_holds_with_epsilon_queries(self, instance):
        graph, nfa, s, t = instance
        engine = DistinctShortestWalks(graph, nfa, s, t)
        keys = [_reversed_tgt_idx(graph, w) for w in engine.enumerate()]
        assert keys == sorted(keys)

    @given(small_instances())
    @settings(max_examples=40, deadline=None)
    def test_all_modes_emit_the_same_sequence(self, instance):
        graph, nfa, s, t = instance
        sequences = []
        for mode in ("iterative", "recursive", "memoryless"):
            engine = DistinctShortestWalks(graph, nfa, s, t, mode=mode)
            sequences.append([w.edges for w in engine.enumerate()])
        assert sequences[0] == sequences[1] == sequences[2]


class TestCertificates:
    @given(small_instances())
    @settings(max_examples=60, deadline=None)
    def test_suffix_sharing_matches_definition_12(self, instance):
        """Every proper suffix of an answer is a node of T, i.e. it is
        shared by all answers extending it; the DFS must therefore
        never revisit a suffix it has completed.  Equivalently: in the
        emitted sequence, answers sharing a suffix are contiguous."""
        graph, nfa, s, t = instance
        engine = DistinctShortestWalks(graph, nfa, s, t)
        answers = [w.edges for w in engine.enumerate()]
        if len(answers) < 2:
            return
        lam = len(answers[0])
        for depth in range(1, lam):
            seen_suffixes = set()
            previous = None
            for edges in answers:
                suffix = edges[-depth:]
                if suffix != previous:
                    assert suffix not in seen_suffixes, (
                        "suffix revisited: DFS left and re-entered a "
                        "subtree of T"
                    )
                    seen_suffixes.add(suffix)
                    previous = suffix

    @given(small_instances())
    @settings(max_examples=60, deadline=None)
    def test_target_states_are_final_and_at_lambda(self, instance):
        """S(⟨t⟩) = final states reached at t at level λ (Definition 14)."""
        graph, nfa, s, t = instance
        engine = DistinctShortestWalks(graph, nfa, s, t)
        if engine.lam is None:
            return
        ann = engine.annotation
        assert ann.target_states  # Nonempty whenever λ is defined.
        if engine.lam == 0:
            return
        for f in ann.target_states:
            assert f in ann.final
            assert ann.L[t][f] == engine.lam
