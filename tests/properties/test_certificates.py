"""Brute-force validation of the certificate sets (Definition 14,
Lemma 22).

The enumeration's correctness rests on the certificate sets ``S(w)``
attached to the backward-search tree's nodes.  These tests rebuild
``S(w)`` *from the definition* — no shared code with the algorithm —
and check the paper's structural lemmas on random instances:

* ``S(w) ≠ ∅`` for every node ``w`` of ``T`` (remark after Def. 14);
* Lemma 22: if ``w₂`` is a strict descendant of ``w₁`` in ``T`` with
  ``Src(w₁) = Src(w₂)``, then ``S(w₁) ∩ S(w₂) = ∅`` — the property
  that lets ``Enumerate`` share one queue family without concurrent
  access.
"""

from typing import FrozenSet, List, Sequence, Set, Tuple

from hypothesis import given, settings

from repro.automata.nfa import NFA
from repro.automata.ops import remove_epsilon
from repro.core.engine import DistinctShortestWalks
from repro.graph.database import Graph

from tests.conftest import small_instances


def _forward_states(
    nfa: NFA, graph: Graph, edges: Sequence[int]
) -> FrozenSet[int]:
    """``Δ(I, Lbl(prefix))`` — states reachable over the label sets."""
    current: Set[int] = set(nfa.eps_closure(nfa.initial))
    for e in edges:
        nxt: Set[int] = set()
        for symbol in graph.label_names_of(e):
            for q in current:
                nxt.update(nfa.delta(q, symbol))
        current = set(nfa.eps_closure(nxt))
        if not current:
            break
    return frozenset(current)


def _backward_states(
    nfa: NFA, graph: Graph, edges: Sequence[int]
) -> FrozenSet[int]:
    """``Δ⁻¹(Lbl(suffix), F)`` — states from which the suffix accepts."""
    eps_free = remove_epsilon(nfa) if nfa.has_epsilon else nfa
    current: Set[int] = set(eps_free.final)
    for e in reversed(edges):
        prev: Set[int] = set()
        for symbol in graph.label_names_of(e):
            for q in eps_free.states():
                if set(eps_free.delta(q, symbol)) & current:
                    prev.add(q)
        current = prev
        if not current:
            break
    # Δ⁻¹ is against the ε-closed relation: q counts when some state of
    # closure(q) works.
    return frozenset(
        q
        for q in nfa.states()
        if set(nfa.eps_closure([q])) & current
    )


def _definition14_S(
    nfa: NFA,
    graph: Graph,
    answers: List[Tuple[int, ...]],
    suffix: Tuple[int, ...],
) -> FrozenSet[int]:
    """``S(suffix)`` computed literally from Definition 14."""
    lam = len(answers[0])
    result: Set[int] = set()
    back = _backward_states(nfa, graph, suffix)
    for answer in answers:
        if suffix and answer[lam - len(suffix):] != suffix:
            continue
        prefix = answer[: lam - len(suffix)]
        result |= _forward_states(nfa, graph, prefix) & back
    return frozenset(result)


def _tree_nodes(
    answers: List[Tuple[int, ...]]
) -> Set[Tuple[int, ...]]:
    """All suffixes of answers = the nodes of T (Definition 12)."""
    nodes: Set[Tuple[int, ...]] = {()}
    for answer in answers:
        for depth in range(1, len(answer) + 1):
            nodes.add(answer[len(answer) - depth:])
    return nodes


class TestCertificateStructure:
    @given(small_instances())
    @settings(max_examples=50, deadline=None)
    def test_certificates_nonempty(self, instance):
        graph, nfa, s, t = instance
        engine = DistinctShortestWalks(graph, nfa, s, t)
        answers = [w.edges for w in engine.enumerate()]
        if not answers or len(answers[0]) == 0:
            return
        for suffix in _tree_nodes(answers):
            assert _definition14_S(nfa, graph, answers, suffix), suffix

    @given(small_instances())
    @settings(max_examples=50, deadline=None)
    def test_lemma22_disjointness(self, instance):
        """Ancestor/descendant nodes at the same vertex have disjoint
        certificates."""
        graph, nfa, s, t = instance
        engine = DistinctShortestWalks(graph, nfa, s, t)
        answers = [w.edges for w in engine.enumerate()]
        if not answers or len(answers[0]) == 0:
            return
        src_arr = graph.src_array
        nodes = sorted(_tree_nodes(answers), key=len)

        def source_of(suffix: Tuple[int, ...]) -> int:
            return t if not suffix else src_arr[suffix[0]]

        for shorter in nodes:
            for longer in nodes:
                if len(longer) <= len(shorter):
                    continue
                if longer[len(longer) - len(shorter):] != (shorter or ()):
                    continue  # Not a descendant.
                if shorter and longer[-len(shorter):] != shorter:
                    continue
                if source_of(shorter) != source_of(longer):
                    continue
                s1 = _definition14_S(nfa, graph, answers, shorter)
                s2 = _definition14_S(nfa, graph, answers, longer)
                assert not (s1 & s2), (shorter, longer, s1 & s2)

    @given(small_instances())
    @settings(max_examples=40, deadline=None)
    def test_root_certificate_matches_engine(self, instance):
        """S(⟨t⟩) from Definition 14 equals the engine's start states."""
        graph, nfa, s, t = instance
        engine = DistinctShortestWalks(graph, nfa, s, t)
        answers = [w.edges for w in engine.enumerate()]
        if not answers or len(answers[0]) == 0:
            return
        brute = _definition14_S(nfa, graph, answers, ())
        assert brute == engine.annotation.target_states
