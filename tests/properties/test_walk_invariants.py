"""Property-based invariants of the answer sets (Definition 8).

Every output of the engine must be:

* **sound** — a real walk from s to t whose label set meets L(A);
* **minimal** — of length exactly λ;
* **distinct** — never repeated;
and the enumeration must be **complete** (checked against the oracle
elsewhere; here we recheck soundness structurally, which also guards
the oracle itself).
"""

from hypothesis import given, settings

from repro.core.engine import DistinctShortestWalks

from tests.conftest import small_instances


class TestOutputInvariants:
    @given(small_instances())
    @settings(max_examples=80, deadline=None)
    def test_soundness(self, instance):
        graph, nfa, s, t = instance
        engine = DistinctShortestWalks(graph, nfa, s, t)
        for walk in engine.enumerate():
            # A real walk...
            vertices = walk.vertices()
            for e, (u, v) in zip(walk.edges, zip(vertices, vertices[1:])):
                assert graph.src(e) == u
                assert graph.tgt(e) == v
            # ...from s to t...
            assert walk.src == s
            assert walk.tgt == t
            # ...that matches the query.
            assert nfa.matches_label_sets(walk.label_sets())

    @given(small_instances())
    @settings(max_examples=80, deadline=None)
    def test_minimality_and_uniform_length(self, instance):
        graph, nfa, s, t = instance
        engine = DistinctShortestWalks(graph, nfa, s, t)
        walks = list(engine.enumerate())
        if engine.lam is None:
            assert walks == []
            return
        assert all(w.length == engine.lam for w in walks)

    @given(small_instances())
    @settings(max_examples=80, deadline=None)
    def test_distinctness(self, instance):
        graph, nfa, s, t = instance
        walks = list(DistinctShortestWalks(graph, nfa, s, t).enumerate())
        assert len({w.edges for w in walks}) == len(walks)

    @given(small_instances())
    @settings(max_examples=40, deadline=None)
    def test_lambda_is_truly_minimal(self, instance):
        """No matching walk of length < λ exists (via stateset BFS)."""
        graph, nfa, s, t = instance
        engine = DistinctShortestWalks(graph, nfa, s, t)
        if engine.lam in (None, 0):
            return
        # Breadth-first over (vertex, state set) up to λ-1.
        start = (s, nfa.eps_closure(nfa.initial))
        frontier = [start]
        seen = {start}
        for _ in range(engine.lam - 1):
            nxt = []
            for v, states in frontier:
                for e in graph.out_edges(v):
                    stepped = set()
                    for a in graph.label_names_of(e):
                        for q in states:
                            stepped.update(nfa.delta(q, a))
                    stepped = nfa.eps_closure(stepped)
                    if not stepped:
                        continue
                    node = (graph.tgt(e), frozenset(stepped))
                    assert not (
                        node[0] == t and node[1] & nfa.final
                    ), "found matching walk shorter than λ"
                    if node not in seen:
                        seen.add(node)
                        nxt.append(node)
            frontier = nxt

    @given(small_instances())
    @settings(max_examples=40, deadline=None)
    def test_enumeration_is_repeatable(self, instance):
        graph, nfa, s, t = instance
        engine = DistinctShortestWalks(graph, nfa, s, t)
        first = [w.edges for w in engine.enumerate()]
        second = [w.edges for w in engine.enumerate()]
        assert first == second

    @given(small_instances())
    @settings(max_examples=40, deadline=None)
    def test_partial_consumption_is_safe(self, instance):
        """Abandoning an enumeration never corrupts later ones."""
        graph, nfa, s, t = instance
        engine = DistinctShortestWalks(graph, nfa, s, t)
        full = [w.edges for w in engine.enumerate()]
        for k in range(len(full)):
            _ = engine.first(k)
            assert [w.edges for w in engine.enumerate()] == full
