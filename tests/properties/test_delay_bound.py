"""Combinatorial validation of Theorem 2's delay bound.

Wall-clock delay measurements live in ``benchmarks/``; here we verify
the bound *deterministically* by counting data-structure operations.
Between two consecutive outputs, ``Enumerate`` performs at most
O(λ × |A|) queue operations (peek / advance / restart): the DFS crosses
at most 2λ tree edges and each frame touches each of its ≤ |Q| queues a
constant number of times.  We instrument the queues and assert the
count against ``C · λ · (|Q| + 1)`` with a fixed small constant — on
adversarial instances designed to maximize queue traffic.
"""

from hypothesis import given, settings

from repro.core.annotate import annotate
from repro.core.compile import compile_query
from repro.core.enumerate import enumerate_walks
from repro.core.trim import trim
from repro.datastructures.restartable_queue import RestartableQueue
from repro.workloads.worstcase import diamond_chain, duplicate_bomb, wide_nfa

from tests.conftest import small_instances

#: Queue operations allowed between outputs per unit of λ·(|Q|+1).
_CONSTANT = 12


class _CountingQueue(RestartableQueue):
    """RestartableQueue that reports operations into a shared cell."""

    __slots__ = ("_counter",)

    def __init__(self, queue: RestartableQueue, counter: dict) -> None:
        super().__init__(list(queue))
        self._counter = counter

    def peek(self):
        self._counter["ops"] += 1
        return super().peek()

    def advance(self) -> None:
        self._counter["ops"] += 1
        super().advance()

    def restart(self) -> None:
        self._counter["ops"] += 1
        super().restart()


def _instrument(trimmed, counter):
    for per_vertex in trimmed.queues:
        for state in list(per_vertex):
            per_vertex[state] = _CountingQueue(per_vertex[state], counter)


def _max_ops_between_outputs(graph, nfa, s, t):
    cq = compile_query(graph, nfa)
    ann = annotate(cq, s, t)
    trimmed = trim(graph, ann)
    counter = {"ops": 0}
    _instrument(trimmed, counter)
    iterator = enumerate_walks(
        graph, trimmed, ann.lam, t, ann.target_states
    )
    max_gap = 0
    outputs = 0
    last = 0
    for _ in iterator:
        outputs += 1
        max_gap = max(max_gap, counter["ops"] - last)
        last = counter["ops"]
    # Also count the tail work after the final output (termination).
    max_gap = max(max_gap, counter["ops"] - last)
    return ann.lam, cq.n_states, max_gap, outputs


class TestOperationBound:
    def test_diamond_chain(self):
        graph, nfa, s, t = diamond_chain(10, parallel=2)
        lam, n_states, max_gap, outputs = _max_ops_between_outputs(
            graph, nfa, graph.vertex_id(s), graph.vertex_id(t)
        )
        assert outputs == 2 ** 10
        assert max_gap <= _CONSTANT * lam * (n_states + 1)

    def test_duplicate_bomb(self):
        """Nondeterminism blows up certificates, not the delay."""
        graph, nfa, s, t = duplicate_bomb(8, 4)
        lam, n_states, max_gap, outputs = _max_ops_between_outputs(
            graph, nfa, graph.vertex_id(s), graph.vertex_id(t)
        )
        assert outputs == 1
        assert max_gap <= _CONSTANT * lam * (n_states + 1)

    def test_wide_automaton_on_diamond(self):
        graph, _, s, t = diamond_chain(8, parallel=2)
        nfa = wide_nfa(6, ("a",))
        lam, n_states, max_gap, outputs = _max_ops_between_outputs(
            graph, nfa, graph.vertex_id(s), graph.vertex_id(t)
        )
        assert outputs == 2 ** 8
        assert max_gap <= _CONSTANT * lam * (n_states + 1)

    def test_high_in_degree_does_not_leak_into_delay(self):
        """The Trim step exists precisely so that vertices of huge
        in-degree cost nothing at enumeration time (Section 3.2)."""
        from repro.graph.builder import GraphBuilder
        from repro.automata.nfa import NFA

        builder = GraphBuilder()
        # Many edges into 'hub' that are NOT on any shortest walk...
        for i in range(500):
            builder.add_edge(f"noise{i}", "hub", ["b"])
        # ...plus a 2-answer diamond through the hub.
        builder.add_edge("s", "hub", ["a"])
        builder.add_edge("s", "hub", ["a"])
        builder.add_edge("hub", "t", ["a"])
        graph = builder.build()
        nfa = NFA(1)
        nfa.add_transition(0, "a", 0)
        nfa.set_initial(0)
        nfa.set_final(0)
        lam, n_states, max_gap, outputs = _max_ops_between_outputs(
            graph, nfa, graph.vertex_id("s"), graph.vertex_id("t")
        )
        assert outputs == 2
        # In-degree 502 must not appear in the gap: bound is in λ only.
        assert max_gap <= _CONSTANT * lam * (n_states + 1)

    @given(small_instances())
    @settings(max_examples=60, deadline=None)
    def test_random_instances(self, instance):
        graph, nfa, s, t = instance
        lam, n_states, max_gap, outputs = _max_ops_between_outputs(
            graph, nfa, s, t
        )
        if lam in (None, 0) or outputs == 0:
            return
        assert max_gap <= _CONSTANT * max(lam, 1) * (n_states + 1)
