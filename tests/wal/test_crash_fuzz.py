"""Fault-injection property suite for the durability subsystem.

Each seeded case builds a durable database, crashes it by damaging the
WAL directory at a random byte offset (truncation and/or a flipped
byte, sometimes a corrupted snapshot), recovers, and diffs the result
against a **rebuild-from-scratch oracle**: a fresh ``LiveGraph``
seeded with the same base graph replaying exactly the records the
damaged log still holds.  The contract under test:

* recovery never loses a frame the damaged log still carries, and
  never applies a partial one (``last_lsn`` equals the damaged file's
  valid-frame count);
* the recovered graph is state-identical (name-wise — edge ids are
  compared too, via the rendered order) to the oracle;
* all four query modes — iterative, recursive, memoryless enumeration
  and the DP answer count — agree with an oracle database over the
  rebuilt graph;
* the log can be **continued** after recovery: reopening truncates the
  torn tail, further batches append cleanly, the warm façade caches
  stay coherent through the mutation (checked against a fresh rebuild
  per query), and a final re-recovery equals the continued state.

Knobs (mirroring ``tests/property/test_live_differential.py``):
``WAL_FUZZ_CASES`` (default 25) and ``WAL_FUZZ_SEED_BASE`` (default 0)
— the CI ``crash-fuzz`` job runs disjoint seed ranges.  A failure
replays locally with::

    WAL_FUZZ_SEED_BASE=<base> PYTHONPATH=src python -m pytest \
        "tests/wal/test_crash_fuzz.py::test_crash_recovery[<case>]"
"""

from __future__ import annotations

import os
import random
import shutil
from typing import List

import pytest

from repro.api import Database
from repro.baselines.oracle import random_regex_compact
from repro.core.engine import DistinctShortestWalks
from repro.graph.builder import GraphBuilder
from repro.live import (
    AddEdge,
    AddVertex,
    LiveGraph,
    RemoveEdge,
    SetEdgeLabels,
)
from repro.live.delta import ops_from_dicts
from repro.query import rpq
from repro.wal.frames import scan_bytes
from repro.wal.recovery import recover
from repro.wal.snapshot import list_snapshots
from repro.wal.writer import LOG_NAME

_ALPHABET = ("a", "b", "c")

SEED_BASE = int(os.environ.get("WAL_FUZZ_SEED_BASE", "0"))
N_CASES = int(os.environ.get("WAL_FUZZ_CASES", "25"))
_N_BATCHES = 6


def _random_base(rng: random.Random):
    n = rng.randint(1, 4)
    builder = GraphBuilder()
    builder.add_vertices([f"v{i}" for i in range(n)])
    for _ in range(rng.randint(0, 6)):
        labels = rng.sample(_ALPHABET, rng.randint(1, 2))
        builder.add_edge(
            f"v{rng.randrange(n)}", f"v{rng.randrange(n)}", sorted(labels)
        )
    return builder.build()


def _random_regex(rng: random.Random, depth: int = 2) -> str:
    # The shared compact grammar (repro.baselines.oracle); the local
    # graph generator stays — its draw order predates the shared one.
    return random_regex_compact(rng, depth)


def _random_batch(rng: random.Random, live: LiveGraph) -> List:
    ops: List = []
    for _ in range(rng.randint(1, 3)):
        staged = {op.edge for op in ops if isinstance(op, RemoveEdge)}
        live_ids = [e for e in live.live_edges() if e not in staged]
        vertex_pool = [
            live.vertex_name(v) for v in live.vertices()
        ] or ["v0"]

        def pick_vertex() -> str:
            if rng.random() < 0.15:
                return f"w{rng.randrange(4)}"
            return rng.choice(vertex_pool)

        roll = rng.random()
        labels = tuple(
            sorted(rng.sample(_ALPHABET, rng.randint(1, 2)))
        )
        if roll < 0.55 or not live_ids:
            ops.append(AddEdge(pick_vertex(), pick_vertex(), labels))
        elif roll < 0.75:
            ops.append(RemoveEdge(rng.choice(live_ids)))
        elif roll < 0.9:
            ops.append(SetEdgeLabels(rng.choice(live_ids), labels))
        else:
            ops.append(AddVertex(f"u{rng.randrange(3)}"))
    return ops


def _rendered_state(live: LiveGraph):
    """Name-wise (vertices, ordered edge list) view of a live graph."""
    g = live.to_graph()
    edges = [
        (
            str(g.vertex_name(g.src(e))),
            str(g.vertex_name(g.tgt(e))),
            g.label_names_of(e),
        )
        for e in g.edges()
    ]
    names = sorted(str(g.vertex_name(v)) for v in g.vertices())
    return names, edges


def _rendered_walk(graph, edges):
    return tuple(
        (
            str(graph.vertex_name(graph.src(e))),
            str(graph.vertex_name(graph.tgt(e))),
            graph.label_names_of(e),
        )
        for e in edges
    )


def _damage(rng: random.Random, wal_dir: str) -> None:
    """Inject one crash fault into a copied WAL directory."""
    path = os.path.join(wal_dir, LOG_NAME)
    data = open(path, "rb").read()
    roll = rng.random()
    if data:
        if roll < 0.45:  # Torn write / lost tail: truncate anywhere.
            cut = rng.randrange(len(data) + 1)
            data = data[:cut]
        elif roll < 0.75:  # Bit rot: flip one byte.
            pos = rng.randrange(len(data))
            mutated = bytearray(data)
            mutated[pos] = (mutated[pos] + 1 + rng.randrange(255)) % 256
            data = bytes(mutated)
        else:  # Both: flip a byte, then lose the tail after it.
            pos = rng.randrange(len(data))
            mutated = bytearray(data)
            mutated[pos] ^= 0xFF
            cut = rng.randrange(pos, len(data) + 1)
            data = bytes(mutated)[:cut]
        with open(path, "wb") as fh:
            fh.write(data)
    snapshots = list_snapshots(wal_dir)
    if len(snapshots) >= 2 and rng.random() < 0.3:
        # Damage the newest snapshot; an older one (at worst the lsn-0
        # bootstrap) still validates, so recovery must fall back.
        _, newest = snapshots[0]
        blob = bytearray(open(newest, "rb").read())
        if blob:
            blob[rng.randrange(len(blob))] ^= 0x5A
            with open(newest, "wb") as fh:
                fh.write(blob)


def _query_modes_vs_oracle(db, live, oracle_graph, expr, source, target, ctx):
    """All four query modes of ``db`` against an oracle rebuild."""
    oracle_db = Database(oracle_graph)
    want = oracle_db.query(expr).from_(source).to(target).run()
    want_rows = [_rendered_walk(oracle_graph, r.walk.edges) for r in want]
    for mode in ("iterative", "recursive", "memoryless"):
        got = db.query(expr).from_(source).to(target).mode(mode).run()
        assert got.lam == want.lam, f"{mode} λ ({ctx})"
        rows = [_rendered_walk(live, r.walk.edges) for r in got]
        assert rows == want_rows, f"{mode} rows ({ctx})"
    # Mode four: the engine-level DP answer count on the oracle graph.
    engine = DistinctShortestWalks(
        oracle_graph, rpq(expr).automaton, source, target, mode="iterative"
    )
    assert engine.lam == want.lam, f"count λ ({ctx})"
    if want.lam is not None:
        assert engine.count(method="dp") == len(want_rows), f"count ({ctx})"
    return want.lam


@pytest.mark.parametrize("case", range(N_CASES))
def test_crash_recovery(case: int, tmp_path) -> None:
    seed = SEED_BASE + case
    rng = random.Random(seed)
    ctx = f"seed={seed}"

    base = _random_base(rng)
    pristine = str(tmp_path / "pristine")
    expressions = [_random_regex(rng) for _ in range(2)]

    # -- phase 1: a leader lives, mutates, compacts, "crashes" --------
    db = Database.open(pristine, graph=base, sync="always")
    compact_at = rng.randrange(_N_BATCHES)
    for i in range(_N_BATCHES):
        ops = _random_batch(rng, db.live())
        db.mutate(ops, compact=(True if i == compact_at else False))
    db.close()

    pristine_log = open(os.path.join(pristine, LOG_NAME), "rb").read()
    pristine_records = scan_bytes(pristine_log).records

    # -- phase 2: copy + damage + recover -----------------------------
    damaged = str(tmp_path / "damaged")
    shutil.copytree(pristine, damaged)
    _damage(rng, damaged)

    damaged_log = open(os.path.join(damaged, LOG_NAME), "rb").read()
    surviving = scan_bytes(damaged_log).records
    # The damaged log's valid prefix is a prefix of the pristine log.
    assert surviving == pristine_records[: len(surviving)], ctx

    state = recover(damaged)
    # Frame accounting: every surviving frame replayed, none partial.
    assert state.last_lsn == len(surviving), ctx

    # Oracle: rebuild from scratch — same base, replay the survivors.
    oracle = LiveGraph(base)
    for record in surviving:
        if record["kind"] == "batch":
            oracle.apply(ops_from_dicts(record["ops"]))
        else:
            oracle.compact()
    assert _rendered_state(state.graph) == _rendered_state(oracle), ctx

    # -- phase 3: queries agree across all modes ----------------------
    recovered_db = Database(state.graph)
    frozen = oracle.to_graph()
    n = frozen.vertex_count
    for expr in expressions:
        source = frozen.vertex_name(rng.randrange(n))
        target = frozen.vertex_name(rng.randrange(n))
        _query_modes_vs_oracle(
            recovered_db, state.graph, frozen, expr, source, target,
            f"{ctx} expr={expr!r} {source}->{target}",
        )

    # -- phase 4: the log continues after recovery --------------------
    db2 = Database.open(damaged, graph=base, sync="always")
    live2 = db2.live()
    expr = expressions[0]
    m = live2.vertex_count
    source = live2.vertex_name(rng.randrange(m))
    target = live2.vertex_name(rng.randrange(m))
    # Warm the façade caches, then mutate, then query again: cached
    # artifacts must be invalidated (or kept) correctly — compare
    # against a fresh rebuild both times.
    _query_modes_vs_oracle(
        db2, live2, live2.to_graph(), expr, source, target,
        f"{ctx} warm-before",
    )
    db2.mutate(_random_batch(rng, live2), compact=False)
    _query_modes_vs_oracle(
        db2, live2, live2.to_graph(), expr, source, target,
        f"{ctx} warm-after",
    )
    continued = _rendered_state(live2)
    last = db2.wal_writer().last_lsn
    db2.close()

    state2 = recover(damaged)
    assert not state2.torn_tail, ctx  # Reopen truncated the torn tail.
    assert state2.last_lsn == last, ctx
    assert _rendered_state(state2.graph) == continued, ctx


def test_damage_generator_is_not_degenerate(tmp_path) -> None:
    """Over many seeds, ``_damage`` shrinks logs, flips bytes in place
    and (given two snapshots) hits snapshot files — no fault shape is
    dead code."""
    shrunk = flipped = snapped = 0
    for seed in range(40):
        wal_dir = str(tmp_path / f"d{seed}")
        db = Database.open(wal_dir, graph=_random_base(random.Random(seed)))
        db.mutate([AddEdge("p", "q", ("a",))], compact=True)
        db.mutate([AddEdge("q", "p", ("b",))])
        db.close()
        log = os.path.join(wal_dir, LOG_NAME)
        before = open(log, "rb").read()
        snaps_before = {
            path: open(path, "rb").read()
            for _, path in list_snapshots(wal_dir)
        }
        _damage(random.Random(1000 + seed), wal_dir)
        after = open(log, "rb").read()
        if len(after) < len(before):
            shrunk += 1
        elif after != before:
            flipped += 1
        if any(
            open(path, "rb").read() != blob
            for path, blob in snaps_before.items()
        ):
            snapped += 1
    assert shrunk > 0 and flipped > 0 and snapped > 0
