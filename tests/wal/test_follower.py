"""Unit tests for the tailing read replica (:mod:`repro.wal.follower`)."""

from __future__ import annotations

import os

import pytest

from repro.api import Database
from repro.exceptions import WalError
from repro.live.delta import AddEdge
from repro.live.live_graph import LiveGraph
from repro.wal.follower import FollowerDatabase
from repro.wal.frames import encode_frame
from repro.wal.writer import LOG_NAME, WalWriter


def _leader(tmp_path):
    live = LiveGraph()
    writer = WalWriter(str(tmp_path), sync="none")
    live.attach_wal(writer)
    return live, writer


def test_initial_catch_up_from_recovery(tmp_path) -> None:
    live, writer = _leader(tmp_path)
    live.apply([AddEdge("a", "b", ("x",))])
    live.apply([AddEdge("b", "c", ("y",))])
    writer.sync_now()
    follower = FollowerDatabase(str(tmp_path))
    assert follower.last_lsn == 2
    assert follower.graph.to_graph().edge_count == 2
    writer.close()


def test_tailing_new_records(tmp_path) -> None:
    live, writer = _leader(tmp_path)
    live.apply([AddEdge("a", "b", ("x",))])
    writer.sync_now()
    follower = FollowerDatabase(str(tmp_path))
    assert follower.catch_up() == 0  # Already current.
    live.apply([AddEdge("b", "c", ("y",))])
    live.apply([AddEdge("c", "a", ("x",))])
    writer.sync_now()
    assert follower.catch_up() == 2
    assert follower.last_lsn == 3
    assert follower.graph.to_graph().edge_count == 3
    writer.close()


def test_partial_frame_retried_without_advancing(tmp_path) -> None:
    live, writer = _leader(tmp_path)
    live.apply([AddEdge("a", "b", ("x",))])
    writer.sync_now()
    follower = FollowerDatabase(str(tmp_path))
    offset_before = follower.offset

    # Simulate the leader mid-write: half a frame on disk.
    frame = encode_frame({"v": 1, "lsn": 2, "kind": "batch", "ops": []})
    path = os.path.join(str(tmp_path), LOG_NAME)
    writer.close()
    with open(path, "ab") as fh:
        fh.write(frame[: len(frame) // 2])
    assert follower.catch_up() == 0
    assert follower.offset == offset_before  # Did not advance.

    with open(path, "ab") as fh:
        fh.write(frame[len(frame) // 2:])
    assert follower.catch_up() == 1
    assert follower.last_lsn == 2


def test_compaction_records_are_followed(tmp_path) -> None:
    live, writer = _leader(tmp_path)
    live.apply([AddEdge("a", "b", ("x",)), AddEdge("b", "c", ("y",))])
    writer.sync_now()
    follower = FollowerDatabase(str(tmp_path))
    live.compact()
    live.apply([AddEdge("c", "a", ("z",))])
    writer.sync_now()
    assert follower.catch_up() == 2
    assert follower.graph.to_graph().edge_count == 3
    writer.close()


def test_wait_for(tmp_path) -> None:
    live, writer = _leader(tmp_path)
    live.apply([AddEdge("a", "b", ("x",))])
    writer.sync_now()
    follower = FollowerDatabase(str(tmp_path), poll_interval=0.005)
    assert follower.wait_for(1, timeout=0.5)
    assert not follower.wait_for(2, timeout=0.05)
    live.apply([AddEdge("b", "c", ("y",))])
    writer.sync_now()
    assert follower.wait_for(2, timeout=0.5)
    writer.close()


def test_run_bounds(tmp_path) -> None:
    live, writer = _leader(tmp_path)
    live.apply([AddEdge("v0", "v1", ("x",))])
    writer.sync_now()
    follower = FollowerDatabase(str(tmp_path), poll_interval=0.005)
    # Recovery already caught everything; run() observes no new records
    # and returns at the duration bound.
    assert follower.run(duration=0.02) == 0
    for i in range(1, 3):
        live.apply([AddEdge(f"v{i}", f"v{i + 1}", ("x",))])
    writer.sync_now()
    assert follower.run(max_records=2) == 2
    assert follower.last_lsn == 3
    writer.close()


def test_replaced_log_is_loud(tmp_path) -> None:
    live, writer = _leader(tmp_path)
    live.apply([AddEdge("a", "b", ("x",))])
    live.apply([AddEdge("b", "c", ("y",))])
    writer.sync_now()
    follower = FollowerDatabase(str(tmp_path))
    writer.close()
    # Rewrite the log with a different history: the follower's offset
    # now points into a stream whose next record is not last_lsn + 1.
    path = os.path.join(str(tmp_path), LOG_NAME)
    data = open(path, "rb").read()
    with open(path, "wb") as fh:
        fh.write(data + encode_frame({"v": 1, "lsn": 9, "kind": "batch"}))
    with pytest.raises(WalError, match="no longer continues"):
        follower.catch_up()


def _rendered(graph, edges):
    return tuple(
        (
            str(graph.vertex_name(graph.src(e))),
            str(graph.vertex_name(graph.tgt(e))),
            graph.label_names_of(e),
        )
        for e in edges
    )


def test_reads_match_leader(tmp_path) -> None:
    live, writer = _leader(tmp_path)
    live.apply(
        [
            AddEdge("a", "b", ("x",)),
            AddEdge("b", "c", ("x",)),
            AddEdge("a", "c", ("y",)),
        ]
    )
    writer.sync_now()
    follower = FollowerDatabase(str(tmp_path))

    frozen = live.to_graph()
    oracle = Database(frozen)
    want = oracle.query("x x | y").from_("a").to("c").run()
    got = follower.query("x x | y").from_("a").to("c").run()
    assert got.lam == want.lam
    assert [
        _rendered(follower.graph, row.walk.edges) for row in got
    ] == [_rendered(frozen, row.walk.edges) for row in want]
    writer.close()


def test_missing_log_is_quiet(tmp_path) -> None:
    follower = FollowerDatabase(str(tmp_path))
    assert follower.catch_up() == 0
    assert follower.last_lsn == 0
