"""Unit tests for the snapshot codec (:mod:`repro.wal.snapshot`)."""

from __future__ import annotations

import json
import os

import pytest

from repro.exceptions import WalError
from repro.graph.database import Graph
from repro.wal.snapshot import (
    check_wire_name,
    list_snapshots,
    load_latest_snapshot,
    snapshot_name,
    write_snapshot,
)


def _graph(costs=None) -> Graph:
    return Graph(
        vertex_names=["v0", "v1", "v2"],
        label_names=["a", "b"],
        src=[0, 1, 2],
        tgt=[1, 2, 0],
        labels=[(0,), (1,), (0, 1)],
        costs=costs,
    )


def _render(graph: Graph):
    """Name-wise edge set — ids may legitimately differ across codecs."""
    return sorted(
        (
            graph.vertex_name(graph.src(e)),
            graph.vertex_name(graph.tgt(e)),
            tuple(graph.label_names_of(e)),
            graph.cost(e) if graph.has_costs else None,
        )
        for e in graph.edges()
    )


def test_round_trip(tmp_path) -> None:
    g = _graph()
    path = write_snapshot(str(tmp_path), g, 7)
    assert os.path.basename(path) == snapshot_name(7)
    load = load_latest_snapshot(str(tmp_path))
    assert load is not None
    assert load.lsn == 7
    assert _render(load.graph) == _render(g)
    assert not load.graph.has_costs


def test_round_trip_with_costs(tmp_path) -> None:
    g = _graph(costs=[3, 1, 2])
    write_snapshot(str(tmp_path), g, 1)
    load = load_latest_snapshot(str(tmp_path))
    assert load.graph.has_costs
    assert _render(load.graph) == _render(g)


def test_non_string_vertex_names_survive(tmp_path) -> None:
    # graph_to_dict would stringify these; the snapshot codec must not.
    g = Graph(
        vertex_names=[0, 1, None],
        label_names=["a"],
        src=[0],
        tgt=[1],
        labels=[(0,)],
    )
    write_snapshot(str(tmp_path), g, 3)
    load = load_latest_snapshot(str(tmp_path))
    names = sorted(
        (load.graph.vertex_name(v) for v in load.graph.vertices()),
        key=repr,
    )
    assert names == sorted([0, 1, None], key=repr)


def test_tuple_vertex_name_rejected(tmp_path) -> None:
    g = Graph(
        vertex_names=[("p", 1), "v1"],
        label_names=["a"],
        src=[0],
        tgt=[1],
        labels=[(0,)],
    )
    with pytest.raises(WalError):
        write_snapshot(str(tmp_path), g, 1)
    # And nothing was left under the final name.
    assert list_snapshots(str(tmp_path)) == []


def test_check_wire_name() -> None:
    for ok in ("x", 7, 1.5, True, None):
        check_wire_name(ok)
    for bad in ((1, 2), [1], {"a": 1}):
        with pytest.raises(WalError):
            check_wire_name(bad)


def test_no_tmp_artifacts(tmp_path) -> None:
    write_snapshot(str(tmp_path), _graph(), 2)
    assert [f for f in os.listdir(tmp_path) if f.endswith(".tmp")] == []


def test_corrupt_newest_falls_back_to_older(tmp_path) -> None:
    g = _graph()
    write_snapshot(str(tmp_path), g, 2)
    newest = write_snapshot(str(tmp_path), g, 5)
    with open(newest, "r+b") as fh:
        fh.seek(10)
        fh.write(b"X")
    load = load_latest_snapshot(str(tmp_path))
    assert load is not None
    assert load.lsn == 2


def test_truncated_newest_falls_back(tmp_path) -> None:
    write_snapshot(str(tmp_path), _graph(), 1)
    newest = write_snapshot(str(tmp_path), _graph(), 4)
    data = open(newest, "rb").read()
    with open(newest, "wb") as fh:
        fh.write(data[: len(data) // 2])
    assert load_latest_snapshot(str(tmp_path)).lsn == 1


def test_renamed_snapshot_is_skipped(tmp_path) -> None:
    # A file lying about its watermark via its name must not win.
    path = write_snapshot(str(tmp_path), _graph(), 3)
    os.rename(path, os.path.join(str(tmp_path), snapshot_name(9)))
    assert load_latest_snapshot(str(tmp_path)) is None


def test_crc_covers_body(tmp_path) -> None:
    path = write_snapshot(str(tmp_path), _graph(), 3)
    document = json.load(open(path, "r", encoding="utf-8"))
    document["lsn"] = 4  # Valid JSON, wrong content.
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh)
    assert load_latest_snapshot(str(tmp_path)) is None


def test_list_snapshots_newest_first(tmp_path) -> None:
    for lsn in (1, 9, 4):
        write_snapshot(str(tmp_path), _graph(), lsn)
    assert [lsn for lsn, _ in list_snapshots(str(tmp_path))] == [9, 4, 1]


def test_missing_dir_is_empty(tmp_path) -> None:
    assert list_snapshots(str(tmp_path / "nope")) == []
    assert load_latest_snapshot(str(tmp_path / "nope")) is None
