"""Unit tests for crash recovery (:mod:`repro.wal.recovery`)."""

from __future__ import annotations

import os

import pytest

from repro.exceptions import WalError
from repro.live.delta import AddEdge, AddVertex, RemoveEdge, SetEdgeLabels
from repro.live.live_graph import LiveGraph
from repro.wal.frames import encode_frame
from repro.wal.recovery import recover
from repro.wal.snapshot import snapshot_name, write_snapshot
from repro.wal.writer import LOG_NAME, WalWriter


def _log_path(wal_dir) -> str:
    return os.path.join(str(wal_dir), LOG_NAME)


def _rendered(live: LiveGraph):
    """Name-wise view of the live graph — ids differ across rebuilds."""
    g = live.to_graph()
    edges = sorted(
        (
            g.vertex_name(g.src(e)),
            g.vertex_name(g.tgt(e)),
            tuple(g.label_names_of(e)),
            g.cost(e) if g.has_costs else None,
        )
        for e in g.edges()
    )
    names = sorted((g.vertex_name(v) for v in g.vertices()), key=repr)
    return names, edges


def test_missing_dir_is_loud(tmp_path) -> None:
    with pytest.raises(WalError):
        recover(str(tmp_path / "nope"))


def test_empty_dir_recovers_empty(tmp_path) -> None:
    state = recover(str(tmp_path))
    assert state.last_lsn == 0
    assert state.snapshot_lsn == 0
    assert state.graph.to_graph().edge_count == 0
    assert not state.torn_tail


def test_log_only_replay(tmp_path) -> None:
    live = LiveGraph()
    with WalWriter(str(tmp_path), sync="none") as writer:
        live.attach_wal(writer)
        live.apply([AddEdge("a", "b", ("x",))])
        live.apply([AddEdge("b", "c", ("y",)), AddVertex("lonely")])
    state = recover(str(tmp_path))
    assert state.last_lsn == 2
    assert state.snapshot_lsn == 0
    assert state.replayed_batches == 2
    assert _rendered(state.graph) == _rendered(live)


def test_snapshot_plus_tail(tmp_path) -> None:
    live = LiveGraph()
    with WalWriter(str(tmp_path), sync="none") as writer:
        live.attach_wal(writer)
        live.apply([AddEdge("a", "b", ("x",))])
        live.compact()  # Snapshot at lsn 2.
        live.apply([AddEdge("b", "c", ("y",))])
    state = recover(str(tmp_path))
    assert state.snapshot_lsn == 2
    assert state.last_lsn == 3
    assert state.replayed_batches == 1
    assert state.replayed_compactions == 0
    assert _rendered(state.graph) == _rendered(live)


def test_compaction_replay_keeps_edge_ids_consistent(tmp_path) -> None:
    """Id-addressed ops after a compaction must resolve identically."""
    live = LiveGraph()
    with WalWriter(str(tmp_path), sync="none") as writer:
        live.attach_wal(writer)
        live.apply(
            [
                AddEdge("a", "b", ("x",)),
                AddEdge("b", "c", ("y",)),
                AddEdge("c", "a", ("x", "y")),
            ]
        )
        live.apply([RemoveEdge(1)])
        live.compact()  # Renumbers: surviving edges become 0, 1.
        live.apply([SetEdgeLabels(1, ("z",))])
    # Remove the snapshot so recovery must REPLAY the compact record
    # (not start after it) and still resolve edge id 1 the same way.
    os.unlink(os.path.join(str(tmp_path), snapshot_name(3)))
    state = recover(str(tmp_path))
    assert state.replayed_compactions == 1
    assert _rendered(state.graph) == _rendered(live)


def test_torn_tail_is_tolerated_and_reported(tmp_path) -> None:
    live = LiveGraph()
    with WalWriter(str(tmp_path), sync="none") as writer:
        live.attach_wal(writer)
        live.apply([AddEdge("a", "b", ("x",))])
    with open(_log_path(tmp_path), "ab") as fh:
        fh.write(b"999:00000000:{torn")
    state = recover(str(tmp_path))
    assert state.last_lsn == 1
    assert state.torn_tail
    assert state.valid_offset < os.path.getsize(_log_path(tmp_path))


def test_snapshot_ahead_of_truncated_log_is_skipped(tmp_path) -> None:
    live = LiveGraph()
    with WalWriter(str(tmp_path), sync="none") as writer:
        live.attach_wal(writer)
        live.apply([AddEdge("a", "b", ("x",))])
        live.apply([AddEdge("b", "c", ("y",))])
        live.compact()  # Snapshot at lsn 3.
    # Truncate the log below the snapshot watermark: the log is the
    # source of truth, so recovery must fall back to replaying it.
    data = open(_log_path(tmp_path), "rb").read()
    first_end = data.index(b"\n") + 1
    with open(_log_path(tmp_path), "wb") as fh:
        fh.write(data[:first_end])
    state = recover(str(tmp_path))
    assert state.snapshot_lsn == 0
    assert state.last_lsn == 1
    g = state.graph.to_graph()
    assert g.edge_count == 1


def test_corrupt_snapshot_falls_back_to_replay(tmp_path) -> None:
    live = LiveGraph()
    with WalWriter(str(tmp_path), sync="none") as writer:
        live.attach_wal(writer)
        live.apply([AddEdge("a", "b", ("x",))])
        live.compact()
    snap = os.path.join(str(tmp_path), snapshot_name(2))
    with open(snap, "r+b") as fh:
        fh.seek(5)
        fh.write(b"X")
    state = recover(str(tmp_path))
    assert state.snapshot_lsn == 0  # Fell back to empty + full replay.
    assert state.last_lsn == 2
    assert _rendered(state.graph) == _rendered(live)


def test_corrupt_bootstrap_snapshot_is_loud(tmp_path) -> None:
    """Losing the lsn-0 snapshot must not silently recover empty.

    The bootstrap snapshot is the only record of the state the
    database was seeded with — the log starts *after* it.  When it is
    corrupt and no other snapshot validates, "empty + full replay"
    would silently drop the seed data, so recovery refuses instead.
    """
    base = LiveGraph()
    base.apply([AddEdge("seed", "data", ("x",))])
    write_snapshot(str(tmp_path), base.to_graph(), 0)
    with WalWriter(str(tmp_path), sync="none") as writer:
        writer.append_batch([AddVertex("later")])
    snap = os.path.join(str(tmp_path), snapshot_name(0))
    with open(snap, "r+b") as fh:
        fh.seek(5)
        fh.write(b"X")
    with pytest.raises(WalError, match="bootstrap"):
        recover(str(tmp_path))


def test_log_surgery_is_loud(tmp_path) -> None:
    """A log with a missing record must not replay off by one.

    Replay must start at exactly ``watermark + 1``: a hole in the LSN
    sequence (here lsn 2 was cut out, leaving a snapshot at watermark
    1 that the remaining log cannot continue from) raises instead of
    silently skipping a committed batch.
    """
    live = LiveGraph()
    with WalWriter(str(tmp_path), sync="none") as writer:
        live.attach_wal(writer)
        live.apply([AddEdge("a", "b", ("x",))])  # lsn 1
        live.apply([AddEdge("b", "c", ("y",))])  # lsn 2
        live.apply([AddEdge("c", "d", ("x",))])  # lsn 3
    write_snapshot(str(tmp_path), live.to_graph(), 1)
    data = open(_log_path(tmp_path), "rb").read()
    frames = data.splitlines(keepends=True)
    surgery = frames[0] + encode_frame(
        {"v": 1, "lsn": 3, "kind": "batch", "ops": []}
    )
    with open(_log_path(tmp_path), "wb") as fh:
        fh.write(surgery)
    with pytest.raises(WalError):
        recover(str(tmp_path))


def test_unreplayable_record_is_wrapped(tmp_path) -> None:
    with open(_log_path(tmp_path), "wb") as fh:
        fh.write(
            encode_frame(
                {
                    "v": 1,
                    "lsn": 1,
                    "kind": "batch",
                    "ops": [{"op": "remove_edge", "edge": 99}],
                }
            )
        )
    with pytest.raises(WalError, match="failed to replay"):
        recover(str(tmp_path))


def test_writer_truncates_torn_tail_on_reopen(tmp_path) -> None:
    live = LiveGraph()
    with WalWriter(str(tmp_path), sync="none") as writer:
        live.attach_wal(writer)
        live.apply([AddEdge("a", "b", ("x",))])
    with open(_log_path(tmp_path), "ab") as fh:
        fh.write(b"junk after the valid prefix")
    state = recover(str(tmp_path))
    assert state.torn_tail
    writer = WalWriter(
        str(tmp_path),
        sync="none",
        start_lsn=state.last_lsn,
        start_offset=state.valid_offset,
    )
    live2 = state.graph
    live2.attach_wal(writer)
    live2.apply([AddEdge("b", "c", ("y",))])
    writer.close()
    clean = recover(str(tmp_path))
    assert clean.last_lsn == 2
    assert not clean.torn_tail


def test_stale_future_snapshot_is_discarded_on_reopen(tmp_path) -> None:
    """A snapshot ahead of a truncated log must not survive a reopen.

    After the log is cut below a compaction snapshot's watermark,
    continuing the log reuses those LSNs for a *different* history; if
    the stale snapshot stayed, a later recovery would trust it at its
    (colliding) watermark and resurrect discarded state.
    """
    live = LiveGraph()
    with WalWriter(str(tmp_path), sync="none") as writer:
        live.attach_wal(writer)
        live.apply([AddEdge("a", "b", ("x",))])  # lsn 1
        live.apply([AddEdge("b", "c", ("y",))])  # lsn 2
        live.compact()                           # lsn 3 + snapshot-3
    # Fault: lose everything after the first record.
    data = open(_log_path(tmp_path), "rb").read()
    with open(_log_path(tmp_path), "wb") as fh:
        fh.write(data[: data.index(b"\n") + 1])
    state = recover(str(tmp_path))
    assert state.last_lsn == 1
    # Continue the log on the new timeline: lsns 2 and 3 get new ops.
    writer = WalWriter(
        str(tmp_path),
        sync="none",
        start_lsn=state.last_lsn,
        start_offset=state.valid_offset,
    )
    assert os.path.basename(snapshot_name(3)) not in os.listdir(
        str(tmp_path)
    )
    live2 = state.graph
    live2.attach_wal(writer)
    live2.apply([AddEdge("x", "y", ("z",))])  # lsn 2
    live2.apply([AddEdge("y", "z", ("z",))])  # lsn 3
    writer.close()
    again = recover(str(tmp_path))
    assert again.snapshot_lsn == 0  # Never the dead timeline's 3.
    assert _rendered(again.graph) == _rendered(live2)


def test_writer_refuses_shrunken_log(tmp_path) -> None:
    with WalWriter(str(tmp_path), sync="none") as writer:
        writer.append_batch([AddVertex("a")])
    with pytest.raises(WalError, match="behind recovery"):
        WalWriter(str(tmp_path), start_lsn=5, start_offset=10_000)
