"""Unit tests for WAL record framing (:mod:`repro.wal.frames`)."""

from __future__ import annotations

import pytest

from repro.exceptions import WalError
from repro.wal.frames import (
    encode_frame,
    iter_frames,
    scan_bytes,
)


def _frames(n: int, kind: str = "batch") -> bytes:
    return b"".join(
        encode_frame({"v": 1, "lsn": i + 1, "kind": kind, "ops": []})
        for i in range(n)
    )


def test_frame_shape() -> None:
    frame = encode_frame({"v": 1, "lsn": 1, "kind": "batch", "ops": []})
    assert frame.endswith(b"\n")
    length, crc, payload = frame.rstrip(b"\n").split(b":", 2)
    assert int(length) == len(payload)
    assert len(crc) == 8


def test_round_trip() -> None:
    data = _frames(3)
    records = [r for r, _ in iter_frames(data)]
    assert [r["lsn"] for r in records] == [1, 2, 3]


def test_scan_empty() -> None:
    scan = scan_bytes(b"")
    assert scan.records == []
    assert scan.valid_offset == 0
    assert not scan.torn
    assert scan.last_lsn == 0


def test_truncation_mid_frame_stops_cleanly() -> None:
    data = _frames(3)
    for cut in range(len(data)):
        scan = scan_bytes(data[:cut])
        # Never a partial record, never a lost complete one.
        complete = [
            end for _, end in iter_frames(data) if end <= cut
        ]
        assert len(scan.records) == len(complete)
        assert scan.valid_offset == (complete[-1] if complete else 0)


def test_corrupt_byte_stops_at_first_invalid_never_at_valid() -> None:
    data = _frames(4)
    boundaries = [end for _, end in iter_frames(data)]
    for pos in range(0, len(data), 7):
        mutated = bytearray(data)
        mutated[pos] = (mutated[pos] + 1) % 256
        scan = scan_bytes(bytes(mutated))
        # Frames entirely before the corrupted byte must all survive.
        intact = sum(1 for end in boundaries if end <= pos)
        assert len(scan.records) >= intact
        # And every reported record must be bit-identical to an
        # original one (CRC catches the rest).
        for got, want in zip(scan.records, range(1, 5)):
            assert got["lsn"] == want


def test_garbage_tail_sets_torn() -> None:
    data = _frames(2) + b"12:deadbeef:{oops"
    scan = scan_bytes(data)
    assert scan.last_lsn == 2
    assert scan.torn


def test_non_contiguous_lsn_is_loud() -> None:
    data = encode_frame(
        {"v": 1, "lsn": 1, "kind": "batch", "ops": []}
    ) + encode_frame({"v": 1, "lsn": 3, "kind": "batch", "ops": []})
    with pytest.raises(WalError):
        scan_bytes(data)


def test_start_lsn_offsets_expectation() -> None:
    data = b"".join(
        encode_frame({"v": 1, "lsn": lsn, "kind": "batch", "ops": []})
        for lsn in (5, 6)
    )
    assert scan_bytes(data, start_lsn=4).last_lsn == 6
    with pytest.raises(WalError):
        scan_bytes(data, start_lsn=0)


def test_unknown_kind_current_version_is_loud() -> None:
    data = encode_frame({"v": 1, "lsn": 1, "kind": "mystery"})
    with pytest.raises(WalError):
        scan_bytes(data)


def test_newer_version_unknown_kind_is_loud_but_named() -> None:
    data = encode_frame({"v": 99, "lsn": 1, "kind": "checkpoint2"})
    with pytest.raises(WalError, match="newer"):
        scan_bytes(data)


def test_newer_version_known_kind_replays() -> None:
    # Tolerant reader: extra fields from a future schema are ignored
    # as long as the kind is understood.
    data = encode_frame(
        {"v": 2, "lsn": 1, "kind": "batch", "ops": [], "shard": 7}
    )
    scan = scan_bytes(data)
    assert scan.last_lsn == 1


def test_unserializable_record_raises() -> None:
    with pytest.raises(WalError):
        encode_frame({"v": 1, "lsn": 1, "kind": "batch", "ops": [object()]})


def test_bad_lsn_or_version_is_invalid_frame() -> None:
    for record in (
        {"v": 1, "lsn": 0, "kind": "batch"},
        {"v": 1, "lsn": True, "kind": "batch"},
        {"v": 0, "lsn": 1, "kind": "batch"},
        {"lsn": 1, "kind": "batch"},  # v missing entirely
    ):
        data = encode_frame(record)
        assert scan_bytes(data).records == []
