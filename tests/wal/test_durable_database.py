"""Durable façade wiring: ``Database.open``/``recover``/``close``,
``register_durable``, the ``QueryService`` WAL knob and the durability
CLI surface."""

from __future__ import annotations

import json
import os

import pytest

from repro.api import Database
from repro.exceptions import WalError
from repro.graph.builder import GraphBuilder
from repro.live.delta import AddEdge
from repro.live.live_graph import LiveGraph
from repro.service.service import QueryService
from repro.wal.snapshot import list_snapshots


def _base_graph():
    builder = GraphBuilder()
    builder.add_vertices(["a", "b", "c"])
    builder.add_edge("a", "b", ["x"])
    builder.add_edge("b", "c", ["x"])
    return builder.build()


def _rendered(live: LiveGraph):
    g = live.to_graph()
    edges = sorted(
        (
            g.vertex_name(g.src(e)),
            g.vertex_name(g.tgt(e)),
            tuple(g.label_names_of(e)),
        )
        for e in g.edges()
    )
    names = sorted(str(g.vertex_name(v)) for v in g.vertices())
    return names, edges


class TestOpenRecoverClose:
    def test_fresh_dir_bootstraps_snapshot_zero(self, tmp_path) -> None:
        db = Database.open(str(tmp_path), graph=_base_graph())
        try:
            assert [lsn for lsn, _ in list_snapshots(str(tmp_path))] == [0]
            assert db.wal_writer().last_lsn == 0
        finally:
            db.close()

    def test_mutations_survive_restart(self, tmp_path) -> None:
        db = Database.open(str(tmp_path), graph=_base_graph(), sync="always")
        db.mutate([AddEdge("c", "a", ("y",))])
        live = db.live()
        before = _rendered(live)
        db.close()

        reopened = Database.open(str(tmp_path), graph=_base_graph())
        try:
            assert _rendered(reopened.live()) == before
            assert reopened.wal_writer().last_lsn >= 1
        finally:
            reopened.close()

    def test_durable_state_wins_over_bootstrap_graph(self, tmp_path) -> None:
        db = Database.open(str(tmp_path), graph=_base_graph(), sync="always")
        db.mutate([AddEdge("c", "a", ("y",))])
        want = _rendered(db.live())
        db.close()

        # A different bootstrap graph must be ignored on restart.
        other = GraphBuilder()
        other.add_edge("zzz", "qqq", ["w"])
        reopened = Database.open(str(tmp_path), graph=other.build())
        try:
            assert _rendered(reopened.live()) == want
        finally:
            reopened.close()

    def test_recover_classmethod_is_read_only(self, tmp_path) -> None:
        db = Database.open(str(tmp_path), graph=_base_graph(), sync="always")
        db.mutate([AddEdge("c", "a", ("y",))])
        want = _rendered(db.live())
        db.close()

        ro = Database.recover(str(tmp_path))
        assert _rendered(ro.live()) == want
        assert ro.wal_writer() is None
        assert ro.last_recovery.last_lsn >= 1
        # Mutating the read-only recovery logs nothing.
        size = os.path.getsize(os.path.join(str(tmp_path), "wal.log"))
        ro.mutate([AddEdge("a", "c", ("z",))])
        assert os.path.getsize(
            os.path.join(str(tmp_path), "wal.log")
        ) == size

    def test_closed_writer_aborts_mutation_pre_commit(self, tmp_path) -> None:
        db = Database.open(str(tmp_path), graph=_base_graph(), sync="always")
        db.mutate([AddEdge("c", "a", ("y",))])
        before = _rendered(db.live())
        db.close()
        # The hook stays attached with a closed writer: a mutation must
        # fail loudly *before* touching the graph, never go undurable.
        with pytest.raises(WalError):
            db.mutate([AddEdge("a", "c", ("z",))])
        assert _rendered(db.live()) == before

    def test_livegraph_bootstrap_is_rejected(self, tmp_path) -> None:
        db = Database()
        with pytest.raises(WalError):
            db.register_durable(
                "g", str(tmp_path), graph=LiveGraph(_base_graph())
            )

    def test_non_scalar_vertex_name_aborts_batch(self, tmp_path) -> None:
        db = Database.open(str(tmp_path), graph=_base_graph())
        try:
            before = _rendered(db.live())
            with pytest.raises(WalError):
                db.mutate([AddEdge(("tuple", 1), "b", ("x",))])
            assert _rendered(db.live()) == before
        finally:
            db.close()


class TestCompactionAndWriterLifecycle:
    def test_forced_compaction_snapshots_and_keeps_writer(
        self, tmp_path
    ) -> None:
        db = Database.open(str(tmp_path), graph=_base_graph(), sync="always")
        try:
            writer = db.wal_writer()
            db.mutate([AddEdge("c", "a", ("y",))], compact=True)
            # The compaction path re-registers the same LiveGraph; the
            # writer must survive and keep numbering the same log.
            assert db.wal_writer() is writer
            assert not writer.closed
            lsns = [lsn for lsn, _ in list_snapshots(str(tmp_path))]
            assert lsns[0] == writer.last_lsn
            db.mutate([AddEdge("a", "c", ("z",))], compact=False)
            assert writer.last_lsn == lsns[0] + 1
        finally:
            db.close()

    def test_replacing_graph_closes_stale_writer(self, tmp_path) -> None:
        db = Database.open(str(tmp_path), graph=_base_graph())
        writer = db.wal_writer()
        db.register("default", _base_graph())
        assert writer.closed
        assert db.wal_writer() is None

    def test_unregister_closes_writer(self, tmp_path) -> None:
        db = Database.open(str(tmp_path), graph=_base_graph())
        writer = db.wal_writer()
        db.unregister("default")
        assert writer.closed


class TestQueryServiceWal:
    def test_register_graph_routes_to_wal_dir(self, tmp_path) -> None:
        service = QueryService(wal_dir=str(tmp_path), wal_sync="always")
        try:
            service.register_graph("g", _base_graph())
            assert os.path.isdir(os.path.join(str(tmp_path), "g"))
            assert service._db.wal_writer("g") is not None
        finally:
            service.close()

    def test_without_wal_dir_nothing_is_durable(self, tmp_path) -> None:
        service = QueryService()
        service.register_graph("g", _base_graph())
        assert service._db.wal_writer("g") is None
        service.close()


class TestCli:
    def _seed(self, tmp_path) -> str:
        wal_dir = str(tmp_path / "wal")
        db = Database.open(wal_dir, graph=_base_graph(), sync="always")
        db.mutate([AddEdge("c", "a", ("y",))])
        db.close()
        return wal_dir

    def test_recover_subcommand(self, tmp_path, capsys) -> None:
        from repro.cli import main

        wal_dir = self._seed(tmp_path)
        assert main(["recover", wal_dir]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["last_lsn"] >= 1
        assert payload["torn_tail"] is False

    def test_follow_once(self, tmp_path, capsys) -> None:
        from repro.cli import main

        wal_dir = self._seed(tmp_path)
        code = main(
            [
                "follow",
                wal_dir,
                "--once",
                "--query",
                "x x",
                "--source",
                "a",
                "--target",
                "c",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["last_lsn"] >= 1
        assert payload["lam"] == 2

    def test_mutate_wal_dir(self, tmp_path, capsys) -> None:
        from repro.cli import main
        from repro.graph.io import save_json

        graph_path = str(tmp_path / "g.json")
        save_json(_base_graph(), graph_path)
        ops_path = str(tmp_path / "ops.jsonl")
        with open(ops_path, "w", encoding="utf-8") as fh:
            fh.write(
                json.dumps(
                    {"op": "add_edge", "src": "c", "tgt": "a", "labels": ["y"]}
                )
                + "\n"
            )
        wal_dir = str(tmp_path / "wal")
        code = main(
            ["mutate", graph_path, ops_path, "--wal-dir", wal_dir]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["wal_lsn"] >= 1
        assert os.path.exists(os.path.join(wal_dir, "wal.log"))
