"""Unit tests for delta-encoded enumeration (Section 6 extension)."""

import pytest
from hypothesis import given, settings

from repro.core.deltas import (
    WalkDelta,
    delta_decode,
    delta_encode,
    stream_sizes,
)
from repro.core.engine import DistinctShortestWalks
from repro.exceptions import GraphError
from repro.workloads.fraud import example9_automaton, example9_graph
from repro.workloads.worstcase import diamond_chain

from tests.conftest import small_instances


class TestRoundtrip:
    def test_example9(self):
        graph = example9_graph()
        engine = DistinctShortestWalks(
            graph, example9_automaton(), "Alix", "Bob"
        )
        original = [w.edges for w in engine.enumerate()]
        deltas = list(delta_encode(engine.enumerate()))
        decoded = [w.edges for w in delta_decode(graph, deltas)]
        assert decoded == original

    def test_first_record_is_complete(self):
        graph = example9_graph()
        engine = DistinctShortestWalks(
            graph, example9_automaton(), "Alix", "Bob"
        )
        first = next(iter(delta_encode(engine.enumerate())))
        assert first.shared_suffix == 0
        assert len(first.prefix_edges) == 3

    def test_consecutive_walks_share_suffixes(self):
        """DFS order ⇒ deep sharing: on a diamond chain the second
        answer differs from the first in exactly one edge."""
        graph, nfa, s, t = diamond_chain(8, parallel=2)
        engine = DistinctShortestWalks(graph, nfa, s, t)
        deltas = list(delta_encode(engine.enumerate()))
        assert deltas[1].shared_suffix == 7
        assert len(deltas[1].prefix_edges) == 1

    def test_compression_ratio(self):
        """Amortized delta size ≈ 2 symbols vs λ for full output."""
        k = 10
        graph, nfa, s, t = diamond_chain(k, parallel=2)
        engine = DistinctShortestWalks(graph, nfa, s, t)
        records, symbols = stream_sizes(delta_encode(engine.enumerate()))
        assert records == 2 ** k
        full_symbols = records * k
        assert symbols < full_symbols / 3

    def test_lambda_zero_walk(self):
        from repro.automata import NFA

        graph = example9_graph()
        nfa = NFA(1)
        nfa.add_transition(0, "h", 0)
        nfa.set_initial(0)
        nfa.set_final(0)
        alix = graph.vertex_id("Alix")
        engine = DistinctShortestWalks(graph, nfa, alix, alix)
        deltas = list(delta_encode(engine.enumerate()))
        decoded = list(delta_decode(graph, deltas, target=alix))
        assert len(decoded) == 1 and decoded[0].length == 0


class TestDecoderValidation:
    def test_first_record_must_be_complete(self):
        graph = example9_graph()
        with pytest.raises(GraphError):
            list(delta_decode(graph, [WalkDelta(2, (0,))]))

    def test_overlong_suffix_rejected(self):
        graph = example9_graph()
        deltas = [WalkDelta(0, (2,)), WalkDelta(5, ())]
        with pytest.raises(GraphError):
            list(delta_decode(graph, deltas))

    def test_empty_walk_needs_target(self):
        graph = example9_graph()
        with pytest.raises(GraphError):
            list(delta_decode(graph, [WalkDelta(0, ())]))

    def test_record_size(self):
        assert WalkDelta(3, (1, 2)).size == 3


class TestProperties:
    @given(small_instances())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_on_random_instances(self, instance):
        graph, nfa, s, t = instance
        engine = DistinctShortestWalks(graph, nfa, s, t)
        original = [w.edges for w in engine.enumerate()]
        deltas = list(delta_encode(engine.enumerate()))
        decoded = [
            w.edges for w in delta_decode(graph, deltas, target=t)
        ]
        assert decoded == original

    @given(small_instances())
    @settings(max_examples=60, deadline=None)
    def test_deltas_never_larger_than_full(self, instance):
        graph, nfa, s, t = instance
        engine = DistinctShortestWalks(graph, nfa, s, t)
        walks = list(engine.enumerate())
        if not walks:
            return
        records, symbols = stream_sizes(delta_encode(iter(walks)))
        full = sum(len(w.edges) for w in walks) + records
        assert symbols <= full
