"""Packed pipeline vs the reference (mapping-form) pipeline.

The packed-pipeline refactor keeps ``L``/``B`` in flat CSR-packed
arrays end-to-end; :func:`annotate_reference` still builds the mapping
form natively, and every downstream stage retains a mapping-driven
path.  These property tests pin the two pipelines together:

* **annotation contents** — the packed annotation's compatibility
  views (``L``, ``B``, entry counts, ``target_info``) must equal the
  reference annotation's maps cell-for-cell, with each cell's witness
  *multiset* identical (duplicates included; within-cell order is
  traversal-specific — the label-indexed scan and the edge-major
  reference discover a BFS level in different orders, so frontier
  pairs of the same vertex may append to a shared cell in either
  order, which ``Trim``'s certificate sort makes unobservable);
* **structure contents** — the packed ``Trim``/``ResumableTrim``
  compatibility views must match a trim of the reference annotation
  queue-for-queue and payload-for-payload (witness payloads again as
  multisets — the queue items and skip-index cells inherit ``B``'s
  within-cell append order, and every consumer unions them into a
  certificate set);
* **enumeration order** — the packed eager DFS, the recursive
  transcription (which runs over the compatibility queue view), the
  packed memoryless ``NextOutput`` *and* the full reference pipeline
  (mapping annotation → dict trim → queue-object DFS) must emit the
  identical walk sequence, for both the target and the saturated
  (multi-target) mode.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.core.annotate import annotate, annotate_reference
from repro.core.compile import compile_query
from repro.core.count import count_distinct_shortest
from repro.core.enumerate import enumerate_walks, enumerate_walks_recursive
from repro.core.memoryless import enumerate_memoryless
from repro.core.trim import resumable_trim, trim

from tests.conftest import small_instances

_SETTINGS = dict(max_examples=60, deadline=None)


def _edges(walks):
    return [w.edges for w in walks]


def _normalized_b(b):
    """``B`` with every cell's witness list sorted (multiset form)."""
    return [
        {
            p: {ti: sorted(cell) for ti, cell in by_ti.items()}
            for p, by_ti in back_map.items()
        }
        for back_map in b
    ]


class TestAnnotationViews:
    @given(small_instances())
    @settings(**_SETTINGS)
    def test_views_equal_reference_maps(self, instance):
        """``L``/``B`` views reproduce the reference maps verbatim."""
        graph, nfa, s, t = instance
        cq = compile_query(graph, nfa)
        for saturate in (False, True):
            packed = annotate(cq, s, t, saturate=saturate)
            ref = annotate_reference(cq, s, t, saturate=saturate)
            assert packed.packed is not None
            assert ref.packed is None
            assert packed.lam == ref.lam
            assert packed.target_states == ref.target_states
            assert packed.L == ref.L
            # Same cells, same witness multiset per cell (duplicates
            # included).  Within-cell order is traversal-specific (see
            # module docstring) and dict key order is not part of the
            # contract, so both are normalized before comparing.
            assert _normalized_b(packed.B) == _normalized_b(ref.B)
            assert (
                packed.annotation_entries() == ref.annotation_entries()
            )

    @given(small_instances())
    @settings(**_SETTINGS)
    def test_target_info_off_packed_arrays(self, instance):
        """Saturated ``target_info`` agrees with the reference's."""
        graph, nfa, s, _ = instance
        cq = compile_query(graph, nfa)
        packed = annotate(cq, s, saturate=True)
        ref = annotate_reference(cq, s, saturate=True)
        for v in graph.vertices():
            assert packed.target_info(v) == ref.target_info(v)
        beyond = graph.vertex_count + 3
        assert packed.target_info(beyond) == (None, frozenset())

    @given(small_instances())
    @settings(**_SETTINGS)
    def test_entry_count_is_packed_length(self, instance):
        """Satellite: the O(1) count equals the exhaustive sum."""
        graph, nfa, s, t = instance
        cq = compile_query(graph, nfa)
        ann = annotate(cq, s, t)
        exhaustive = sum(
            len(preds)
            for vertex_map in ann.B
            for cells in vertex_map.values()
            for preds in cells.values()
        )
        assert ann.annotation_entries() == exhaustive
        assert len(ann.packed) == exhaustive


class TestTrimViews:
    @given(small_instances())
    @settings(**_SETTINGS)
    def test_queues_match_reference_trim(self, instance):
        """Packed trim's queue view == dict trim of the reference."""
        graph, nfa, s, _ = instance
        cq = compile_query(graph, nfa)
        packed_trim = trim(graph, annotate(cq, s, saturate=True))
        ref_trim = trim(graph, annotate_reference(cq, s, saturate=True))
        assert packed_trim.cells is not None
        assert ref_trim.cells is None
        assert packed_trim.total_items() == ref_trim.total_items()
        for u in graph.vertices():
            assert set(packed_trim.queues[u]) == set(ref_trim.queues[u])
            for p, ref_queue in ref_trim.queues[u].items():
                got_items = list(packed_trim.queue(u, p))
                ref_items = list(ref_queue)
                # Same edges in the same TgtIdx order; witness payloads
                # as multisets (within-cell order is traversal-specific
                # — see the module docstring).
                assert [(e, sorted(preds)) for e, preds in got_items] \
                    == [(e, sorted(preds)) for e, preds in ref_items]

    @given(small_instances())
    @settings(**_SETTINGS)
    def test_resumable_matches_reference(self, instance):
        graph, nfa, s, _ = instance
        cq = compile_query(graph, nfa)
        packed_res = resumable_trim(graph, annotate(cq, s, saturate=True))
        ref_res = resumable_trim(
            graph, annotate_reference(cq, s, saturate=True)
        )
        assert packed_res.total_items() == ref_res.total_items()
        for u in graph.vertices():
            assert set(packed_res.index[u]) == set(ref_res.index[u])
            for p, ref_idx in ref_res.index[u].items():
                got = packed_res.for_state(u, p)
                assert got.non_empty_indices() == ref_idx.non_empty_indices()
                for i in ref_idx.non_empty_indices():
                    # Witness multiset per cell; within-cell order is
                    # traversal-specific (see the module docstring).
                    assert sorted(got.payload(i)) \
                        == sorted(ref_idx.payload(i))


class TestEnumerationOrder:
    @given(small_instances())
    @settings(**_SETTINGS)
    def test_all_pipelines_identical_order(self, instance):
        """Packed eager / recursive-view / packed memoryless / full
        reference pipeline: one output sequence."""
        graph, nfa, s, t = instance
        cq = compile_query(graph, nfa)

        ann = annotate(cq, s, t)
        trimmed = trim(graph, ann)
        eager = _edges(
            enumerate_walks(graph, trimmed, ann.lam, t, ann.target_states)
        )
        memoryless = _edges(
            enumerate_memoryless(
                graph, resumable_trim(graph, ann), ann.lam, t,
                ann.target_states,
            )
        )
        # The recursive transcription materializes the compatibility
        # queue view on a fresh trim (cursors are shared state).
        rec_trimmed = trim(graph, ann).snapshot()
        recursive = _edges(
            enumerate_walks_recursive(
                graph, rec_trimmed, ann.lam, t, ann.target_states
            )
        )

        ref_ann = annotate_reference(cq, s, t)
        ref_trimmed = trim(graph, ref_ann)
        reference = _edges(
            enumerate_walks(
                graph, ref_trimmed, ref_ann.lam, t, ref_ann.target_states
            )
        )

        assert eager == reference
        assert memoryless == reference
        assert recursive == reference
        if ann.lam is not None:
            assert len(reference) == count_distinct_shortest(
                graph, ann, ann.lam, t, ann.target_states
            )

    @given(small_instances())
    @settings(**_SETTINGS)
    def test_saturated_order_per_target(self, instance):
        """Multi-target mode: per-target order equality, packed vs
        reference, eager and memoryless."""
        graph, nfa, s, _ = instance
        cq = compile_query(graph, nfa)
        ann = annotate(cq, s, saturate=True)
        ref_ann = annotate_reference(cq, s, saturate=True)
        trimmed = trim(graph, ann)
        ref_trimmed = trim(graph, ref_ann)
        resumable = resumable_trim(graph, ann)
        for v in graph.vertices():
            lam_v, states_v = ann.target_info(v)
            assert (lam_v, states_v) == ref_ann.target_info(v)
            got = _edges(
                enumerate_walks(graph, trimmed, lam_v, v, states_v)
            )
            want = _edges(
                enumerate_walks(graph, ref_trimmed, lam_v, v, states_v)
            )
            assert got == want
            assert want == _edges(
                enumerate_memoryless(graph, resumable, lam_v, v, states_v)
            )
