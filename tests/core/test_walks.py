"""Unit tests for Walk objects."""

import pytest

from repro.core.walks import Walk
from repro.exceptions import GraphError
from repro.workloads.fraud import EXAMPLE9_EDGE_IDS, example9_graph


@pytest.fixture
def graph():
    return example9_graph()


def _edges(*names):
    return tuple(EXAMPLE9_EDGE_IDS[n] for n in names)


class TestStructure:
    def test_w4(self, graph):
        w = Walk(graph, _edges("e2", "e4", "e8"))
        assert w.length == 3
        assert graph.vertex_name(w.src) == "Alix"
        assert graph.vertex_name(w.tgt) == "Bob"
        assert w.vertex_names() == ["Alix", "Dan", "Eve", "Bob"]

    def test_empty_walk(self, graph):
        w = Walk(graph, (), start=graph.vertex_id("Alix"))
        assert w.length == 0
        assert w.src == w.tgt
        assert w.vertex_names() == ["Alix"]

    def test_empty_walk_requires_start(self, graph):
        with pytest.raises(GraphError):
            Walk(graph, ())

    def test_disconnected_edges_rejected(self, graph):
        with pytest.raises(GraphError):
            Walk(graph, _edges("e1", "e3"))  # e3 starts at Dan, not Cassie.

    def test_len_dunder(self, graph):
        assert len(Walk(graph, _edges("e1", "e7"))) == 2

    def test_cost_defaults_to_length(self, graph):
        assert Walk(graph, _edges("e1", "e7")).cost() == 2


class TestLabels:
    def test_label_sets(self, graph):
        w = Walk(graph, _edges("e2", "e3"))
        assert [set(ls) for ls in w.label_sets()] == [{"h", "s"}, {"s"}]

    def test_label_words_cartesian(self, graph):
        w = Walk(graph, _edges("e2", "e4", "e8"))
        words = set(w.label_words())
        # {h,s} × {h} × {h,s} = 4 words.
        assert words == {
            ("h", "h", "h"),
            ("h", "h", "s"),
            ("s", "h", "h"),
            ("s", "h", "s"),
        }

    def test_label_words_limit(self, graph):
        w = Walk(graph, _edges("e2", "e4", "e8"))
        assert len(list(w.label_words(limit=2))) == 2


class TestConcatenation:
    def test_concat(self, graph):
        left = Walk(graph, _edges("e2"))
        right = Walk(graph, _edges("e3"))
        combined = left.concat(right)
        assert combined.edges == _edges("e2", "e3")

    def test_concat_mismatch(self, graph):
        left = Walk(graph, _edges("e1"))  # Ends at Cassie.
        right = Walk(graph, _edges("e8"))  # Starts at Eve.
        with pytest.raises(GraphError):
            left.concat(right)

    def test_prepend_edge(self, graph):
        w = Walk(graph, _edges("e3"))
        assert w.prepend_edge(_edges("e2")[0]).edges == _edges("e2", "e3")

    def test_prepend_bad_edge(self, graph):
        w = Walk(graph, _edges("e3"))  # Starts at Dan.
        with pytest.raises(GraphError):
            w.prepend_edge(_edges("e1")[0])  # e1 ends at Cassie.


class TestValueSemantics:
    def test_equality_and_hash(self, graph):
        w1 = Walk(graph, _edges("e1", "e7"))
        w2 = Walk(graph, _edges("e1", "e7"))
        assert w1 == w2
        assert len({w1, w2}) == 1

    def test_different_edges_same_vertices(self, graph):
        """w1 and w2 of Example 9 visit the same vertices but differ."""
        w1 = Walk(graph, _edges("e1", "e5", "e8"))
        w2 = Walk(graph, _edges("e1", "e6", "e8"))
        assert w1.vertex_names() == w2.vertex_names()
        assert w1 != w2

    def test_describe(self, graph):
        text = Walk(graph, _edges("e2", "e3")).describe()
        assert "Alix" in text and "Dan" in text and "Cassie" in text
        assert "h,s" in text

    def test_describe_empty(self, graph):
        w = Walk(graph, (), start=graph.vertex_id("Bob"))
        assert "Bob" in w.describe()


class TestToDict:
    def test_round_trip_fields(self):
        from repro.workloads.fraud import example9_graph

        graph = example9_graph()
        walk = Walk(graph, (0, 3, 6))  # e2, e4, e8 in paper names.
        data = walk.to_dict()
        assert data["edges"] == [0, 3, 6]
        assert data["vertices"] == ["Alix", "Dan", "Eve", "Bob"]
        assert data["length"] == 3
        assert data["cost"] == 3  # Unit costs.
        assert data["labels"][0] == ["h", "s"]

    def test_empty_walk(self):
        from repro.workloads.fraud import example9_graph

        graph = example9_graph()
        walk = Walk(graph, (), start=graph.vertex_id("Alix"))
        data = walk.to_dict()
        assert data["edges"] == []
        assert data["vertices"] == ["Alix"]
        assert data["length"] == 0

    def test_json_serializable(self):
        import json

        from repro.workloads.fraud import example9_graph

        graph = example9_graph()
        walk = Walk(graph, (0,))
        assert json.loads(json.dumps(walk.to_dict()))["length"] == 1
