"""Unit tests for ``Trim`` / ``ResumableTrim`` — the Lemma 11 invariants."""

import pytest
from hypothesis import given, settings

from repro.core.annotate import annotate
from repro.core.compile import compile_query
from repro.core.trim import resumable_trim, trim
from repro.workloads.fraud import (
    EXAMPLE9_EDGE_IDS,
    example9_automaton,
    example9_graph,
)

from tests.conftest import small_instances


@pytest.fixture
def trimmed_example():
    graph = example9_graph()
    cq = compile_query(graph, example9_automaton())
    ann = annotate(cq, graph.vertex_id("Alix"), graph.vertex_id("Bob"))
    return graph, ann, trim(graph, ann)


class TestFigure3Queues:
    """The C queues must match Figure 3's rightmost column."""

    def test_C_Bob(self, trimmed_example):
        graph, _, trimmed = trimmed_example
        bob = graph.vertex_id("Bob")
        e7, e8 = EXAMPLE9_EDGE_IDS["e7"], EXAMPLE9_EDGE_IDS["e8"]
        # C_Bob[0] = [(e7, [0])]; C_Bob[1] = [(e8, [1,0,1]), (e7, [1])].
        q0 = trimmed.queue(bob, 0)
        assert [(e, sorted(x)) for e, x in q0] == [(e7, [0])]
        q1 = trimmed.queue(bob, 1)
        assert [e for e, _ in q1] == [e8, e7]
        assert sorted(list(q1)[0][1]) == [0, 1, 1]
        assert list(list(q1)[1][1]) == [1]

    def test_C_Cassie(self, trimmed_example):
        graph, _, trimmed = trimmed_example
        cassie = graph.vertex_id("Cassie")
        e1, e3 = EXAMPLE9_EDGE_IDS["e1"], EXAMPLE9_EDGE_IDS["e3"]
        assert [(e, sorted(x)) for e, x in trimmed.queue(cassie, 0)] == [
            (e1, [0])
        ]
        assert [(e, sorted(x)) for e, x in trimmed.queue(cassie, 1)] == [
            (e3, [0, 1])
        ]

    def test_C_Eve(self, trimmed_example):
        graph, _, trimmed = trimmed_example
        eve = graph.vertex_id("Eve")
        e4, e5, e6 = (EXAMPLE9_EDGE_IDS[n] for n in ("e4", "e5", "e6"))
        assert [(e, sorted(x)) for e, x in trimmed.queue(eve, 0)] == [
            (e4, [0]),
            (e5, [0]),
        ]
        assert [(e, sorted(x)) for e, x in trimmed.queue(eve, 1)] == [
            (e4, [1]),
            (e6, [0]),
        ]

    def test_empty_queues_absent(self, trimmed_example):
        graph, _, trimmed = trimmed_example
        alix = graph.vertex_id("Alix")
        assert trimmed.queue(alix, 0) is None
        assert trimmed.queue(alix, 1) is None


class TestLemma11Properties:
    @given(small_instances())
    @settings(max_examples=60, deadline=None)
    def test_queue_contents_match_B(self, instance):
        """Lemma 11(1): (e, X) ∈ C_u[p] iff X = B_u[p][TgtIdx(e)] ≠ ∅."""
        graph, nfa, s, t = instance
        cq = compile_query(graph, nfa)
        ann = annotate(cq, s, saturate=True)
        trimmed = trim(graph, ann)
        for u in graph.vertices():
            seen_states = set(trimmed.queues[u])
            for p, cells in ann.B[u].items():
                non_empty = {i: preds for i, preds in cells.items() if preds}
                if not non_empty:
                    assert p not in seen_states
                    continue
                queue = trimmed.queue(u, p)
                items = {e: list(x) for e, x in queue}
                assert len(items) == len(non_empty)
                for i, preds in non_empty.items():
                    e = graph.in_edges(u)[i]
                    assert items[e] == list(preds)

    @given(small_instances())
    @settings(max_examples=60, deadline=None)
    def test_queues_sorted_by_tgt_idx(self, instance):
        """Lemma 11(2): queues strictly increase in TgtIdx."""
        graph, nfa, s, t = instance
        cq = compile_query(graph, nfa)
        ann = annotate(cq, s, saturate=True)
        trimmed = trim(graph, ann)
        for u in graph.vertices():
            for queue in trimmed.queues[u].values():
                indices = [graph.tgt_idx(e) for e, _ in queue]
                assert indices == sorted(indices)
                assert len(set(indices)) == len(indices)

    @given(small_instances())
    @settings(max_examples=40, deadline=None)
    def test_resumable_matches_queues(self, instance):
        """ResumableTrim stores the same cells as Trim."""
        graph, nfa, s, t = instance
        cq = compile_query(graph, nfa)
        ann = annotate(cq, s, saturate=True)
        trimmed = trim(graph, ann)
        resumable = resumable_trim(graph, ann)
        assert trimmed.total_items() == resumable.total_items()
        for u in graph.vertices():
            for p, queue in trimmed.queues[u].items():
                index = resumable.for_state(u, p)
                assert index is not None
                for e, preds in queue:
                    i = graph.tgt_idx(e)
                    assert index.payload(i) == tuple(preds)


class TestRestartAll:
    def test_restart_all_resets_cursors(self, trimmed_example):
        graph, _, trimmed = trimmed_example
        bob = graph.vertex_id("Bob")
        queue = trimmed.queue(bob, 1)
        queue.advance()
        assert queue.position == 1
        trimmed.restart_all()
        assert queue.position == 0

    def test_total_items(self, trimmed_example):
        _, ann, trimmed = trimmed_example
        # One queue item per non-empty B cell.
        non_empty_cells = sum(
            1
            for per_vertex in ann.B
            for cells in per_vertex.values()
            for preds in cells.values()
            if preds
        )
        assert trimmed.total_items() == non_empty_cells
