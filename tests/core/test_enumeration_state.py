"""Tests for the shared-cursor interleaving guard.

The trimmed annotation's queues are shared mutable state; two
enumerations interleaved over them would skip or repeat answers
silently.  The enumerators acquire the structure while active and the
guard raises :class:`~repro.exceptions.EnumerationStateError` instead
of corrupting results.  The memoryless mode is read-only and exempt.
"""

import pytest

from repro.core.engine import DistinctShortestWalks
from repro.exceptions import EnumerationStateError
from repro.workloads.fraud import example9_automaton, example9_graph


def _engine(mode: str = "iterative") -> DistinctShortestWalks:
    return DistinctShortestWalks(
        example9_graph(), example9_automaton(), "Alix", "Bob", mode=mode
    )


class TestInterleavingGuard:
    def test_interleaved_enumerations_raise(self):
        engine = _engine()
        first = engine.enumerate()
        next(first)  # First enumeration is now active.
        second = engine.enumerate()
        with pytest.raises(EnumerationStateError, match="already running"):
            next(second)
        first.close()

    def test_sequential_enumerations_fine(self):
        engine = _engine()
        a = [w.edges for w in engine.enumerate()]
        b = [w.edges for w in engine.enumerate()]
        assert a == b and len(a) == 4

    def test_closing_releases_the_structure(self):
        engine = _engine()
        first = engine.enumerate()
        next(first)
        first.close()  # Abandon mid-way: cursors restored, lock freed.
        assert [w.edges for w in engine.enumerate()] != []

    def test_exhaustion_releases_the_structure(self):
        engine = _engine()
        assert len(list(engine.enumerate())) == 4
        assert len(list(engine.enumerate())) == 4

    def test_first_k_releases_the_structure(self):
        engine = _engine()
        assert len(engine.first(2)) == 2
        assert len(engine.first(3)) == 3

    def test_recursive_mode_guarded_too(self):
        engine = _engine(mode="recursive")
        first = engine.enumerate()
        next(first)
        second = engine.enumerate()
        with pytest.raises(EnumerationStateError):
            next(second)
        first.close()

    def test_tracked_multiplicity_guarded(self):
        engine = _engine()
        first = engine.enumerate_with_multiplicity(method="tracked")
        next(first)
        with pytest.raises(EnumerationStateError):
            next(engine.enumerate_with_multiplicity(method="tracked"))
        first.close()

    def test_memoryless_mode_interleaves_freely(self):
        """ResumableTrim is read-only: Theorem 18's whole point."""
        engine = _engine(mode="memoryless")
        first = engine.enumerate()
        second = engine.enumerate()
        a1 = next(first)
        b1 = next(second)
        a2 = next(first)
        assert a1.edges == b1.edges
        assert a2.edges != a1.edges
        rest_first = [w.edges for w in first]
        rest_second = [w.edges for w in second]
        assert rest_second == [a2.edges] + rest_first
