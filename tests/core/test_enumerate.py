"""Unit tests for ``Enumerate`` — order, completeness, queue hygiene."""

from hypothesis import given, settings

from repro.baselines.oracle import oracle_answer_set
from repro.core.annotate import annotate
from repro.core.compile import compile_query
from repro.core.enumerate import enumerate_walks, enumerate_walks_recursive
from repro.core.trim import trim
from repro.workloads.fraud import (
    EXAMPLE9_EDGE_IDS,
    example9_automaton,
    example9_graph,
)

from tests.conftest import small_instances


def _setup_example9():
    graph = example9_graph()
    cq = compile_query(graph, example9_automaton())
    ann = annotate(cq, graph.vertex_id("Alix"), graph.vertex_id("Bob"))
    return graph, ann, trim(graph, ann)


def _run(graph, ann, trimmed, target):
    return list(
        enumerate_walks(graph, trimmed, ann.lam, target, ann.target_states)
    )


class TestExample9:
    def test_four_answers_in_dfs_order(self):
        """Output order is fixed by TgtIdx: w4, w1, w2, w3."""
        graph, ann, trimmed = _setup_example9()
        walks = _run(graph, ann, trimmed, graph.vertex_id("Bob"))
        names = {v: k for k, v in EXAMPLE9_EDGE_IDS.items()}
        got = [[names[e] for e in w.edges] for w in walks]
        assert got == [
            ["e2", "e4", "e8"],  # w4
            ["e1", "e5", "e8"],  # w1
            ["e1", "e6", "e8"],  # w2
            ["e2", "e3", "e7"],  # w3
        ]

    def test_no_duplicates(self):
        graph, ann, trimmed = _setup_example9()
        walks = _run(graph, ann, trimmed, graph.vertex_id("Bob"))
        assert len(set(w.edges for w in walks)) == len(walks)

    def test_recursive_variant_identical(self):
        graph, ann, trimmed = _setup_example9()
        iterative = [
            w.edges for w in _run(graph, ann, trimmed, graph.vertex_id("Bob"))
        ]
        recursive = [
            w.edges
            for w in enumerate_walks_recursive(
                graph,
                trimmed,
                ann.lam,
                graph.vertex_id("Bob"),
                ann.target_states,
            )
        ]
        assert iterative == recursive

    def test_reusable_after_full_enumeration(self):
        """Queues are restored, so a second run gives the same output."""
        graph, ann, trimmed = _setup_example9()
        bob = graph.vertex_id("Bob")
        first = [w.edges for w in _run(graph, ann, trimmed, bob)]
        second = [w.edges for w in _run(graph, ann, trimmed, bob)]
        assert first == second

    def test_abandoned_generator_restores_queues(self):
        graph, ann, trimmed = _setup_example9()
        bob = graph.vertex_id("Bob")
        gen = enumerate_walks(graph, trimmed, ann.lam, bob, ann.target_states)
        next(gen)
        gen.close()  # Abandon mid-enumeration.
        again = [w.edges for w in _run(graph, ann, trimmed, bob)]
        assert len(again) == 4


class TestEdgeCases:
    def test_lam_none_yields_nothing(self):
        graph, ann, trimmed = _setup_example9()
        assert (
            list(enumerate_walks(graph, trimmed, None, 0, frozenset()))
            == []
        )

    def test_empty_start_states_yields_nothing(self):
        graph, ann, trimmed = _setup_example9()
        assert (
            list(enumerate_walks(graph, trimmed, 3, 0, frozenset())) == []
        )

    def test_lam_zero_yields_trivial_walk(self):
        graph, ann, trimmed = _setup_example9()
        alix = graph.vertex_id("Alix")
        walks = list(
            enumerate_walks(graph, trimmed, 0, alix, frozenset({0}))
        )
        assert len(walks) == 1
        assert walks[0].length == 0
        assert walks[0].src == alix


class TestProperties:
    @given(small_instances())
    @settings(max_examples=80, deadline=None)
    def test_matches_oracle(self, instance):
        """Completeness + soundness + distinctness vs brute force."""
        graph, nfa, s, t = instance
        cq = compile_query(graph, nfa)
        ann = annotate(cq, s, t)
        trimmed = trim(graph, ann)
        walks = list(
            enumerate_walks(graph, trimmed, ann.lam, t, ann.target_states)
        )
        got = sorted(w.edges for w in walks)
        assert len(set(got)) == len(got), "duplicate output"
        assert got == oracle_answer_set(graph, nfa, s, t)

    @given(small_instances())
    @settings(max_examples=40, deadline=None)
    def test_recursive_matches_iterative_order(self, instance):
        graph, nfa, s, t = instance
        cq = compile_query(graph, nfa)
        ann = annotate(cq, s, t)
        trimmed = trim(graph, ann)
        iterative = [
            w.edges
            for w in enumerate_walks(
                graph, trimmed, ann.lam, t, ann.target_states
            )
        ]
        recursive = [
            w.edges
            for w in enumerate_walks_recursive(
                graph, trimmed, ann.lam, t, ann.target_states
            )
        ]
        assert iterative == recursive

    @given(small_instances())
    @settings(max_examples=40, deadline=None)
    def test_order_is_reverse_tgt_idx_lexicographic(self, instance):
        """Children are explored in increasing TgtIdx: the output order
        is lexicographic in the (reversed) TgtIdx key sequence."""
        graph, nfa, s, t = instance
        cq = compile_query(graph, nfa)
        ann = annotate(cq, s, t)
        trimmed = trim(graph, ann)
        walks = list(
            enumerate_walks(graph, trimmed, ann.lam, t, ann.target_states)
        )
        keys = [
            tuple(graph.tgt_idx(e) for e in reversed(w.edges)) for w in walks
        ]
        assert keys == sorted(keys)
