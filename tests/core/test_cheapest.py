"""Unit tests for Distinct Cheapest Walks (Section 5.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata import NFA, regex_to_nfa
from repro.core.cheapest import DistinctCheapestWalks, cheapest_annotate
from repro.core.compile import compile_query
from repro.core.engine import DistinctShortestWalks
from repro.exceptions import CostError
from repro.graph import GraphBuilder


def _accept_all_nfa(labels=("a",)):
    nfa = NFA(1)
    for a in labels:
        nfa.add_transition(0, a, 0)
    nfa.set_initial(0)
    nfa.set_final(0)
    return nfa


class TestBasics:
    def test_cheaper_long_route_wins(self):
        b = GraphBuilder()
        b.add_edge("s", "t", ["a"], cost=10)
        b.add_edge("s", "m", ["a"], cost=2)
        b.add_edge("m", "t", ["a"], cost=3)
        engine = DistinctCheapestWalks(b.build(), "a+", "s", "t")
        walks = list(engine.enumerate())
        assert engine.cheapest_cost == 5
        assert len(walks) == 1
        assert walks[0].cost() == 5
        assert walks[0].length == 2

    def test_ties_all_enumerated(self):
        b = GraphBuilder()
        b.add_edge("s", "t", ["a"], cost=5)          # Direct, cost 5.
        b.add_edge("s", "m", ["a"], cost=2)
        b.add_edge("m", "t", ["a"], cost=3)          # Two hops, cost 5.
        b.add_edge("s", "t", ["a"], cost=6)          # Too expensive.
        engine = DistinctCheapestWalks(b.build(), "a+", "s", "t")
        walks = list(engine.enumerate())
        assert engine.cheapest_cost == 5
        assert sorted(w.length for w in walks) == [1, 2]

    def test_query_constrains_answers(self):
        b = GraphBuilder()
        b.add_edge("s", "t", ["x"], cost=1)   # Cheap but wrong label.
        b.add_edge("s", "t", ["y"], cost=4)
        engine = DistinctCheapestWalks(b.build(), regex_to_nfa("y"), "s", "t")
        walks = list(engine.enumerate())
        assert engine.cheapest_cost == 4
        assert len(walks) == 1

    def test_no_matching_walk(self):
        b = GraphBuilder()
        b.add_edge("s", "t", ["x"], cost=1)
        engine = DistinctCheapestWalks(b.build(), regex_to_nfa("zz"), "s", "t")
        assert engine.cheapest_cost is None
        assert list(engine.enumerate()) == []

    def test_trivial_walk_cost_zero(self):
        b = GraphBuilder()
        b.add_edge("s", "t", ["a"], cost=1)
        engine = DistinctCheapestWalks(b.build(), "a*", "s", "s")
        walks = list(engine.enumerate())
        assert engine.cheapest_cost == 0
        assert len(walks) == 1 and walks[0].length == 0

    def test_iter_protocol(self):
        b = GraphBuilder()
        b.add_edge("s", "t", ["a"], cost=2)
        assert len(list(DistinctCheapestWalks(b.build(), "a", "s", "t"))) == 1


class TestCostValidation:
    def test_builder_rejects_bad_costs(self):
        b = GraphBuilder()
        with pytest.raises(CostError):
            b.add_edge("s", "t", ["a"], cost=0)


class TestEquivalenceWithBfs:
    """With unit costs, cheapest == shortest (same set, same order)."""

    @given(
        st.integers(min_value=0, max_value=400),
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=4, max_value=12),
    )
    @settings(max_examples=30, deadline=None)
    def test_unit_costs_match_shortest(self, seed, n, m):
        import random

        rng = random.Random(seed)
        b = GraphBuilder()
        names = [f"v{i}" for i in range(n)]
        b.add_vertices(names)
        for _ in range(m):
            labels = rng.sample(["a", "b"], rng.randint(1, 2))
            b.add_edge(rng.choice(names), rng.choice(names), labels, cost=1)
        graph = b.build()
        nfa = _accept_all_nfa(("a", "b"))
        s, t = 0, n - 1
        shortest = [
            w.edges for w in DistinctShortestWalks(graph, nfa, s, t)
        ]
        cheapest = [
            w.edges
            for w in DistinctCheapestWalks(graph, nfa, s, t).enumerate()
        ]
        assert cheapest == shortest


class TestCheapestOracle:
    """Cross-check against exhaustive search on random costed graphs."""

    @given(
        st.integers(min_value=0, max_value=300),
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=3, max_value=10),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_bruteforce(self, seed, n, m):
        import random
        rng = random.Random(seed)
        b = GraphBuilder()
        names = [f"v{i}" for i in range(n)]
        b.add_vertices(names)
        for _ in range(m):
            b.add_edge(
                rng.choice(names),
                rng.choice(names),
                ["a"],
                cost=rng.randint(1, 4),
            )
        graph = b.build()
        nfa = _accept_all_nfa(("a",))
        s, t = 0, n - 1

        # Brute force: DFS all walks of total cost ≤ bound.
        best: dict = {"cost": None, "walks": set()}

        def explore(v, cost, edges):
            if best["cost"] is not None and cost > best["cost"]:
                return
            if v == t and (edges or s == t):
                if best["cost"] is None or cost < best["cost"]:
                    best["cost"], best["walks"] = cost, {tuple(edges)}
                elif cost == best["cost"]:
                    best["walks"].add(tuple(edges))
            for e in graph.out_edges(v):
                new_cost = cost + graph.cost(e)
                if best["cost"] is not None and new_cost > best["cost"]:
                    continue
                if len(edges) >= n * 5:
                    continue  # Safety cap.
                edges.append(e)
                explore(graph.tgt(e), new_cost, edges)
                edges.pop()

        if s == t:
            best["cost"], best["walks"] = 0, {()}
        else:
            # Seed the prune bound with a test-local Dijkstra first:
            # without it the DFS has no bound until its first complete
            # walk and blows up exponentially whenever t is unreachable
            # but a cyclic component is reachable from s.
            import heapq

            dist = {s: 0}
            heap = [(0, s)]
            while heap:
                c, v = heapq.heappop(heap)
                if c > dist[v]:
                    continue
                for e in graph.out_edges(v):
                    u, nc = graph.tgt(e), c + graph.cost(e)
                    if nc < dist.get(u, nc + 1):
                        dist[u] = nc
                        heapq.heappush(heap, (nc, u))
            if t in dist:
                best["cost"] = dist[t]
                explore(s, 0, [])

        engine = DistinctCheapestWalks(graph, nfa, s, t)
        got = sorted(w.edges for w in engine.enumerate())
        if best["cost"] is None:
            assert engine.cheapest_cost is None
            assert got == []
        else:
            assert engine.cheapest_cost == best["cost"]
            assert got == sorted(best["walks"])


class TestCheapestAnnotate:
    def test_L_holds_costs(self):
        b = GraphBuilder()
        b.add_edge("s", "m", ["a"], cost=2)
        b.add_edge("m", "t", ["a"], cost=3)
        graph = b.build()
        cq = compile_query(graph, _accept_all_nfa())
        ann = cheapest_annotate(cq, 0, 2)
        assert ann.lam == 5
        assert ann.L[1][0] == 2
        assert ann.L[2][0] == 5

    def test_improvement_discards_stale_witnesses(self):
        b = GraphBuilder()
        b.add_edge("s", "t", ["a"], cost=9)      # Found first (1 hop).
        b.add_edge("s", "m", ["a"], cost=1)
        b.add_edge("m", "t", ["a"], cost=1)      # Improves to 2.
        graph = b.build()
        cq = compile_query(graph, _accept_all_nfa())
        ann = cheapest_annotate(cq, 0, graph.vertex_id("t"))
        assert ann.lam == 2
        t = graph.vertex_id("t")
        cells = ann.B[t][0]
        # Only the cheap edge's cell may survive.
        surviving_edges = {graph.in_edges(t)[i] for i in cells}
        assert surviving_edges == {2}


class TestHeapSelection:
    def _random_cost_instance(self, seed, n=8, m=20):
        import random

        rng = random.Random(seed)
        builder = GraphBuilder()
        names = [f"v{i}" for i in range(n)]
        for name in names:
            builder.add_vertex(name)
        for _ in range(m):
            builder.add_edge(
                rng.choice(names),
                rng.choice(names),
                [rng.choice("ab")],
                cost=rng.randint(1, 9),
            )
        return builder.build()

    @pytest.mark.parametrize("seed", range(12))
    def test_pairing_matches_binary(self, seed):
        """Both priority queues yield the same answers and λ."""
        graph = self._random_cost_instance(seed)
        nfa = _accept_all_nfa(("a", "b"))
        binary = DistinctCheapestWalks(graph, nfa, "v0", "v1", heap="binary")
        pairing = DistinctCheapestWalks(graph, nfa, "v0", "v1", heap="pairing")
        assert binary.cheapest_cost == pairing.cheapest_cost
        assert [w.edges for w in binary.enumerate()] == [
            w.edges for w in pairing.enumerate()
        ]

    @pytest.mark.parametrize("seed", range(6))
    def test_annotations_identical_up_to_lambda(self, seed):
        """L and B agree across heaps for every entry with cost < λ.

        Entries at cost ≥ λ can be heap-tie-order-dependent scratch,
        recorded before λ was discovered; they never influence the
        enumeration (the DFS only descends through states whose L
        equals the remaining budget, starting from λ at the target).
        """
        graph = self._random_cost_instance(seed, n=6, m=15)
        nfa = _accept_all_nfa(("a", "b"))
        cq = compile_query(graph, nfa)
        ann_b = cheapest_annotate(cq, 0, 1, heap="binary")
        ann_p = cheapest_annotate(cq, 0, 1, heap="pairing")
        assert ann_b.lam == ann_p.lam
        if ann_b.lam is None:
            return
        lam = ann_b.lam
        assert ann_b.target_states == ann_p.target_states
        for u in graph.vertices():
            relevant_b = {p: c for p, c in ann_b.L[u].items() if c < lam}
            relevant_p = {p: c for p, c in ann_p.L[u].items() if c < lam}
            assert relevant_b == relevant_p
            # B cells may record equal-cost witnesses in a different
            # order; as *multisets* per cell they must agree.
            for p in relevant_b:
                cells_b = ann_b.B[u].get(p, {})
                cells_p = ann_p.B[u].get(p, {})
                assert set(cells_b) == set(cells_p)
                for i in cells_b:
                    assert sorted(cells_b[i]) == sorted(cells_p[i])

    def test_unknown_heap_rejected(self):
        from repro.exceptions import QueryError

        builder = GraphBuilder()
        builder.add_edge("a", "b", ["x"], cost=1)
        with pytest.raises(QueryError, match="heap"):
            DistinctCheapestWalks(
                builder.build(), regex_to_nfa("x"), "a", "b", heap="fib"
            )
