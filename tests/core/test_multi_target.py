"""Unit tests for one-source-to-many-targets (Section 5.3)."""

import pytest
from hypothesis import given, settings

from repro.core.engine import DistinctShortestWalks
from repro.core.multi_target import MultiTargetShortestWalks
from repro.workloads.fraud import example9_automaton, example9_graph

from tests.conftest import small_instances


@pytest.fixture
def mt():
    return MultiTargetShortestWalks(
        example9_graph(), example9_automaton(), "Alix"
    )


class TestExample9:
    def test_reached_targets(self, mt):
        assert sorted(mt.reached_target_names()) == [
            "Bob",
            "Cassie",
            "Dan",
            "Eve",
        ]

    def test_lams(self, mt):
        assert mt.lam_for("Bob") == 3
        assert mt.lam_for("Dan") == 1
        assert mt.lam_for("Cassie") == 2
        assert mt.lam_for("Eve") == 2
        assert mt.lam_for("Alix") is None  # ε ∉ L(A), no cycle back.

    def test_walks_to_bob_match_single_target(self, mt):
        single = sorted(
            w.edges
            for w in DistinctShortestWalks(
                example9_graph(), example9_automaton(), "Alix", "Bob"
            ).enumerate()
        )
        multi = sorted(w.edges for w in mt.walks_to("Bob"))
        assert multi == single

    def test_sequential_targets_share_structures(self, mt):
        """Enumerate to several targets one after the other."""
        count_bob = sum(1 for _ in mt.walks_to("Bob"))
        count_eve = sum(1 for _ in mt.walks_to("Eve"))
        count_bob_again = sum(1 for _ in mt.walks_to("Bob"))
        assert count_bob == count_bob_again == 4
        assert count_eve >= 1

    def test_all_walks(self, mt):
        pairs = list(mt.all_walks())
        targets = {name for name, _ in pairs}
        assert targets == {"Bob", "Cassie", "Dan", "Eve"}
        # Walks to each target are grouped and complete.
        assert sum(1 for name, _ in pairs if name == "Bob") == 4

    def test_all_walks_with_explicit_targets(self, mt):
        pairs = list(mt.all_walks(["Dan", "Bob"]))
        assert [name for name, _ in pairs][:1] == ["Dan"]
        assert sum(1 for name, _ in pairs if name == "Bob") == 4

    def test_unreached_target_is_empty(self, mt):
        assert list(mt.walks_to("Alix")) == []

    def test_preprocess_idempotent(self, mt):
        mt.preprocess()
        annotation = mt._annotation
        mt.preprocess()
        assert mt._annotation is annotation


class TestCheapestMultiTarget:
    def test_costed(self):
        from repro.graph import GraphBuilder
        from repro.automata import NFA

        b = GraphBuilder()
        b.add_edge("s", "u", ["a"], cost=4)
        b.add_edge("s", "m", ["a"], cost=1)
        b.add_edge("m", "u", ["a"], cost=1)
        b.add_edge("m", "w", ["a"], cost=7)
        nfa = NFA(1)
        nfa.add_transition(0, "a", 0)
        nfa.set_initial(0)
        nfa.set_final(0)
        mt = MultiTargetShortestWalks(b.build(), nfa, "s", cheapest=True)
        assert mt.lam_for("u") == 2
        assert mt.lam_for("w") == 8
        assert mt.lam_for("s") == 0  # ε ∈ L(A): trivial walk.
        walks_u = list(mt.walks_to("u"))
        assert len(walks_u) == 1 and walks_u[0].cost() == 2


class TestProperties:
    @given(small_instances())
    @settings(max_examples=40, deadline=None)
    def test_multi_target_equals_per_target_runs(self, instance):
        """For every vertex t, the multi-target enumeration equals an
        independent single-target run."""
        graph, nfa, s, _ = instance
        mt = MultiTargetShortestWalks(graph, nfa, s)
        for t in graph.vertices():
            single_engine = DistinctShortestWalks(graph, nfa, s, t)
            single = sorted(w.edges for w in single_engine.enumerate())
            multi = sorted(w.edges for w in mt.walks_to(t))
            assert multi == single, t
            assert mt.lam_for(t) == single_engine.lam
