"""Unit tests for the engine orchestration (``Main``)."""

import pytest
from hypothesis import given, settings

from repro.core.engine import DistinctShortestWalks, distinct_shortest_walks
from repro.exceptions import QueryError
from repro.workloads.fraud import example9_automaton, example9_graph

from tests.conftest import small_instances


@pytest.fixture
def graph():
    return example9_graph()


class TestModes:
    @pytest.mark.parametrize("mode", ["iterative", "recursive", "memoryless"])
    def test_general_modes_agree(self, graph, mode):
        reference = [
            w.edges
            for w in DistinctShortestWalks(
                graph, example9_automaton(), "Alix", "Bob"
            ).enumerate()
        ]
        got = [
            w.edges
            for w in DistinctShortestWalks(
                graph, example9_automaton(), "Alix", "Bob", mode=mode
            ).enumerate()
        ]
        assert got == reference

    def test_unknown_mode_rejected(self, graph):
        with pytest.raises(QueryError):
            DistinctShortestWalks(
                graph, example9_automaton(), "Alix", "Bob", mode="warp"
            )

    def test_auto_mode_on_multilabel_uses_general(self, graph):
        engine = DistinctShortestWalks(
            graph, example9_automaton(), "Alix", "Bob", mode="auto"
        )
        assert not engine.uses_fast_path  # Graph is multi-labeled.
        assert engine.count() == 4

    def test_auto_mode_fast_path(self):
        from repro.automata import regex_to_nfa
        from repro.graph.generators import grid

        g = grid(2, 3)
        # Glushkov of a fixed word is a DFA; Thompson would carry ε and
        # disqualify the fast path.
        dfa = regex_to_nfa("r r d", method="glushkov")
        engine = DistinctShortestWalks(g, dfa, "n0_0", "n1_2", mode="auto")
        assert engine.uses_fast_path
        assert engine.lam == 3


class TestQueryInputs:
    def test_string_query(self, graph):
        engine = DistinctShortestWalks(graph, "h* s (h | s)*", "Alix", "Bob")
        assert engine.count() == 4

    def test_ast_query(self, graph):
        from repro.automata import parse_rpq

        engine = DistinctShortestWalks(
            graph, parse_rpq("h* s (h | s)*"), "Alix", "Bob"
        )
        assert engine.count() == 4

    def test_vertex_ids_accepted(self, graph):
        engine = DistinctShortestWalks(
            graph,
            example9_automaton(),
            graph.vertex_id("Alix"),
            graph.vertex_id("Bob"),
        )
        assert engine.count() == 4


class TestLifecycle:
    def test_preprocess_idempotent(self, graph):
        engine = DistinctShortestWalks(
            graph, example9_automaton(), "Alix", "Bob"
        )
        engine.preprocess()
        first_timings = dict(engine.timings)
        engine.preprocess()
        assert engine.timings == first_timings

    def test_timings_recorded(self, graph):
        engine = DistinctShortestWalks(
            graph, example9_automaton(), "Alix", "Bob"
        )
        engine.preprocess()
        assert set(engine.timings) >= {"compile", "annotate", "trim", "total"}

    def test_lam_and_is_empty(self, graph):
        engine = DistinctShortestWalks(
            graph, example9_automaton(), "Alix", "Bob"
        )
        assert engine.lam == 3
        assert not engine.is_empty
        empty = DistinctShortestWalks(
            graph, example9_automaton(), "Bob", "Alix"
        )
        assert empty.lam is None
        assert empty.is_empty
        assert list(empty.enumerate()) == []

    def test_iter_protocol(self, graph):
        engine = DistinctShortestWalks(
            graph, example9_automaton(), "Alix", "Bob"
        )
        assert len(list(engine)) == 4

    def test_first_k(self, graph):
        engine = DistinctShortestWalks(
            graph, example9_automaton(), "Alix", "Bob"
        )
        two = engine.first(2)
        assert len(two) == 2
        # And the engine remains usable afterwards.
        assert engine.count() == 4

    def test_repeated_enumerations(self, graph):
        engine = DistinctShortestWalks(
            graph, example9_automaton(), "Alix", "Bob"
        )
        assert [w.edges for w in engine.enumerate()] == [
            w.edges for w in engine.enumerate()
        ]

    def test_structure_sizes(self, graph):
        engine = DistinctShortestWalks(
            graph, example9_automaton(), "Alix", "Bob"
        )
        sizes = engine.structure_sizes()
        assert sizes["annotation_entries"] > 0
        assert sizes["trimmed_items"] > 0

    def test_fast_path_has_no_annotation(self):
        from repro.automata import regex_to_nfa
        from repro.graph.generators import grid

        engine = DistinctShortestWalks(
            grid(2, 2),
            regex_to_nfa("r d", method="glushkov"),
            "n0_0",
            "n1_1",
            mode="auto",
        )
        engine.preprocess()
        assert engine.uses_fast_path
        with pytest.raises(QueryError):
            _ = engine.annotation

    def test_fast_path_with_integer_vertex_names(self):
        """resolve_vertex prefers names over ids, so the fast path must
        receive the caller's original designators — handing it the
        already-resolved ids would swap vertices on a graph whose
        vertex *names* are integers (regression)."""
        from repro.automata import regex_to_nfa
        from repro.graph.builder import GraphBuilder

        builder = GraphBuilder()
        builder.add_vertex(1)
        builder.add_vertex(0)
        builder.add_edge(1, 0, ["a"])
        graph = builder.build()
        nfa = regex_to_nfa("a", method="glushkov")
        auto = DistinctShortestWalks(graph, nfa, 1, 0, mode="auto")
        assert auto.uses_fast_path
        assert auto.lam == 1
        assert [w.edges for w in auto.enumerate()] == [(0,)]
        general = DistinctShortestWalks(graph, nfa, 1, 0, mode="iterative")
        assert general.lam == 1


class TestFunctionalFacade:
    def test_distinct_shortest_walks(self, graph):
        walks = list(
            distinct_shortest_walks(
                graph, example9_automaton(), "Alix", "Bob"
            )
        )
        assert len(walks) == 4


class TestProperties:
    @given(small_instances())
    @settings(max_examples=40, deadline=None)
    def test_all_modes_same_sequence(self, instance):
        graph, nfa, s, t = instance
        sequences = [
            [
                w.edges
                for w in DistinctShortestWalks(
                    graph, nfa, s, t, mode=mode
                ).enumerate()
            ]
            for mode in ("iterative", "recursive", "memoryless")
        ]
        assert sequences[0] == sequences[1] == sequences[2]
