"""Equivalence of the label-indexed and reference annotations.

The indexed ``annotate`` / ``cheapest_annotate`` must produce the same
:class:`~repro.core.annotate.Annotation` contents — ``L``, ``B`` (as a
multiset per cell: entry order within a cell is unspecified), ``lam``
and ``target_states`` — as the retained ``*_reference`` traversals, on
random graphs × random automata, in both the target-stopped and the
saturating mode.

One documented exception: with the **pairing heap** in target mode,
``L``/``B`` entries for product pairs *beyond* λ may differ.  Once λ is
known, relaxations of cost > λ are pruned, and whether a tied pop (cost
= λ) happens before or after the target's pop depends on heap insertion
order — which legitimately differs between the edge-major and
label-major relaxation sequences.  Entries beyond λ are dead weight the
enumeration can never reach (the budget hits zero first), so the test
compares the two annotations restricted to entries of cost ≤ λ and
additionally checks the enumerated walk sets match exactly.  The binary
heap pops ties in deterministic ``(cost, v, q)`` order, so it is exact.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.annotate import annotate, annotate_reference
from repro.core.cheapest import cheapest_annotate, cheapest_annotate_reference
from repro.core.compile import compile_query
from repro.core.enumerate import enumerate_walks
from repro.core.trim import trim
from repro.graph.builder import GraphBuilder

from tests.conftest import small_instances, small_nfas

_SETTINGS = dict(max_examples=60, deadline=None)


@st.composite
def costed_instances(draw):
    """A Distinct Cheapest Walks instance with random positive costs."""
    n = draw(st.integers(min_value=1, max_value=6))
    m = draw(st.integers(min_value=0, max_value=12))
    builder = GraphBuilder()
    builder.add_vertices([f"v{i}" for i in range(n)])
    for _ in range(m):
        src = draw(st.integers(min_value=0, max_value=n - 1))
        tgt = draw(st.integers(min_value=0, max_value=n - 1))
        labels = draw(
            st.sets(st.sampled_from(("a", "b", "c")), min_size=1, max_size=3)
        )
        cost = draw(st.integers(min_value=1, max_value=5))
        builder.add_edge(f"v{src}", f"v{tgt}", sorted(labels), cost=cost)
    graph = builder.build()
    nfa = draw(small_nfas())
    s = draw(st.integers(min_value=0, max_value=n - 1))
    t = draw(st.integers(min_value=0, max_value=n - 1))
    return graph, nfa, s, t


def _norm_B(B):
    """B with cells as sorted lists and empty cells/states dropped."""
    return [
        {
            p: {i: sorted(preds) for i, preds in cells.items() if preds}
            for p, cells in per_vertex.items()
            if any(cells.values())
        }
        for per_vertex in B
    ]


def assert_same_annotation(got, want):
    assert got.lam == want.lam
    assert got.L == want.L
    assert _norm_B(got.B) == _norm_B(want.B)
    assert got.target_states == want.target_states
    assert got.initial_closure == want.initial_closure
    assert got.final == want.final


def assert_same_up_to_lam(got, want):
    """Equality of everything the enumeration can reach (cost ≤ λ)."""
    assert got.lam == want.lam
    assert got.target_states == want.target_states
    lam = got.lam
    if lam is None:
        # No pruning ever happened: the runs must be exactly equal.
        assert_same_annotation(got, want)
        return
    for v in range(len(got.L)):
        trim_L = lambda m: {p: d for p, d in m.items() if d <= lam}
        assert trim_L(got.L[v]) == trim_L(want.L[v]), v
        gb = {p: c for p, c in got.B[v].items() if got.L[v].get(p, lam + 1) <= lam}
        wb = {p: c for p, c in want.B[v].items() if want.L[v].get(p, lam + 1) <= lam}
        assert _norm_B([gb]) == _norm_B([wb]), v


class TestAnnotateEquivalence:
    @given(small_instances())
    @settings(**_SETTINGS)
    def test_target_mode(self, instance):
        graph, nfa, s, t = instance
        cq = compile_query(graph, nfa)
        assert_same_annotation(
            annotate(cq, s, t), annotate_reference(cq, s, t)
        )

    @given(small_instances())
    @settings(**_SETTINGS)
    def test_saturating_mode(self, instance):
        graph, nfa, s, _ = instance
        cq = compile_query(graph, nfa)
        assert_same_annotation(
            annotate(cq, s, saturate=True),
            annotate_reference(cq, s, saturate=True),
        )

    @given(small_instances(allow_epsilon=True))
    @settings(**_SETTINGS)
    def test_epsilon_queries_delegate(self, instance):
        """With explicit ε (eliminate_epsilon=False) the indexed entry
        point must behave exactly like the reference — PossiblyVisit's
        output is visit-order-sensitive, so the fast path defers."""
        graph, nfa, s, t = instance
        cq = compile_query(graph, nfa, eliminate_epsilon=False)
        assert_same_annotation(
            annotate(cq, s, t), annotate_reference(cq, s, t)
        )


class TestCheapestEquivalence:
    @given(costed_instances())
    @settings(**_SETTINGS)
    def test_target_mode_binary(self, instance):
        graph, nfa, s, t = instance
        cq = compile_query(graph, nfa)
        assert_same_annotation(
            cheapest_annotate(cq, s, t, heap="binary"),
            cheapest_annotate_reference(cq, s, t, heap="binary"),
        )

    @given(costed_instances())
    @settings(**_SETTINGS)
    def test_saturating_mode_both_heaps(self, instance):
        graph, nfa, s, _ = instance
        cq = compile_query(graph, nfa)
        for heap in ("binary", "pairing"):
            assert_same_annotation(
                cheapest_annotate(cq, s, saturate=True, heap=heap),
                cheapest_annotate_reference(cq, s, saturate=True, heap=heap),
            )

    @given(costed_instances())
    @settings(**_SETTINGS)
    def test_target_mode_pairing_up_to_lam(self, instance):
        graph, nfa, s, t = instance
        cq = compile_query(graph, nfa)
        got = cheapest_annotate(cq, s, t, heap="pairing")
        want = cheapest_annotate_reference(cq, s, t, heap="pairing")
        assert_same_up_to_lam(got, want)
        # Beyond-λ entries are unreachable: the answers must agree.
        cost_arr = graph.cost_array

        def answers(ann):
            return sorted(
                w.edges
                for w in enumerate_walks(
                    graph,
                    trim(graph, ann),
                    ann.lam,
                    t,
                    ann.target_states,
                    cost_of=lambda e: cost_arr[e],
                )
            )

        assert answers(got) == answers(want)


class TestReferenceIsRetained:
    """The reference traversals stay importable from the package root
    (they are the documented baseline of bench_adjacency)."""

    def test_exports(self):
        from repro.core import (  # noqa: F401
            annotate_reference,
            cheapest_annotate_reference,
        )

    def test_engine_uses_indexed_annotate(self):
        import repro.core.engine as engine_mod

        assert engine_mod.annotate is annotate
