"""Unit tests for query compilation."""

import pytest

from repro.automata import ANY, EPSILON, NFA, thompson_nfa
from repro.automata.regex_parser import parse_rpq
from repro.core.compile import compile_query
from repro.exceptions import QueryError
from repro.workloads.fraud import example9_automaton, example9_graph


@pytest.fixture
def graph():
    return example9_graph()


class TestBasics:
    def test_relabeling(self, graph):
        cq = compile_query(graph, example9_automaton())
        h, s = graph.label_id("h"), graph.label_id("s")
        assert cq.delta[0][h] == (0,)
        assert cq.delta[0][s] == (1,)
        assert cq.delta[1][h] == (1,)
        assert cq.n_states == 2
        assert cq.initial == (0,)
        assert cq.final == frozenset({1})

    def test_size_accounting(self, graph):
        cq = compile_query(graph, example9_automaton())
        assert cq.delta_size == 4
        assert cq.size() == 2 + 4

    def test_absent_labels_dropped(self, graph):
        nfa = NFA(2)
        nfa.add_transition(0, "h", 1)
        nfa.add_transition(0, "never_in_graph", 1)
        nfa.set_initial(0)
        nfa.set_final(1)
        cq = compile_query(graph, nfa)
        assert cq.delta_size == 1

    def test_no_initial_state_rejected(self, graph):
        nfa = NFA(1)
        nfa.set_final(0)
        with pytest.raises(QueryError):
            compile_query(graph, nfa)
        with pytest.raises(QueryError):
            compile_query(graph, NFA(0))

    def test_repr(self, graph):
        assert "|Q|=2" in repr(compile_query(graph, example9_automaton()))


class TestWildcard:
    def test_any_expands_to_alphabet(self, graph):
        nfa = NFA(2)
        nfa.add_transition(0, ANY, 1)
        nfa.set_initial(0)
        nfa.set_final(1)
        cq = compile_query(graph, nfa)
        # Expanded over {h, s}.
        assert set(cq.delta[0]) == {graph.label_id("h"), graph.label_id("s")}

    def test_any_merges_with_concrete(self, graph):
        nfa = NFA(3)
        nfa.add_transition(0, ANY, 1)
        nfa.add_transition(0, "h", 2)
        nfa.set_initial(0)
        nfa.set_final(1, 2)
        cq = compile_query(graph, nfa)
        h = graph.label_id("h")
        assert set(cq.delta[0][h]) == {1, 2}


class TestEpsilonElimination:
    def test_closure_applied_to_targets(self, graph):
        nfa = NFA(3)
        nfa.add_transition(0, "h", 1)
        nfa.add_transition(1, EPSILON, 2)
        nfa.set_initial(0)
        nfa.set_final(2)
        cq = compile_query(graph, nfa)
        assert not cq.has_eps
        assert set(cq.delta[0][graph.label_id("h")]) == {1, 2}

    def test_initial_closure(self, graph):
        nfa = NFA(2)
        nfa.add_transition(0, EPSILON, 1)
        nfa.add_transition(1, "h", 1)
        nfa.set_initial(0)
        nfa.set_final(1)
        cq = compile_query(graph, nfa)
        assert cq.initial_closure == frozenset({0, 1})

    def test_epsilon_cycle(self, graph):
        nfa = NFA(2)
        nfa.add_transition(0, EPSILON, 1)
        nfa.add_transition(1, EPSILON, 0)
        nfa.add_transition(0, "h", 0)
        nfa.set_initial(0)
        nfa.set_final(1)
        cq = compile_query(graph, nfa)
        assert set(cq.delta[0][graph.label_id("h")]) == {0, 1}

    def test_opt_out(self, graph):
        nfa = thompson_nfa(parse_rpq("h s"))
        cq = compile_query(graph, nfa, eliminate_epsilon=False)
        assert cq.has_eps
        assert sum(len(e) for e in cq.eps) > 0

    def test_thompson_query_compiles_eps_free_by_default(self, graph):
        cq = compile_query(graph, thompson_nfa(parse_rpq("h* s (h | s)*")))
        assert not cq.has_eps
