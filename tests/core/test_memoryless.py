"""Unit tests for the memoryless enumeration (Theorem 18)."""

from hypothesis import given, settings

from repro.core.annotate import annotate
from repro.core.compile import compile_query
from repro.core.enumerate import enumerate_walks
from repro.core.memoryless import enumerate_memoryless, next_output
from repro.core.trim import resumable_trim, trim
from repro.workloads.fraud import example9_automaton, example9_graph

from tests.conftest import small_instances


def _setup(graph, nfa, s, t):
    cq = compile_query(graph, nfa)
    ann = annotate(cq, s, t)
    return ann, trim(graph, ann), resumable_trim(graph, ann)


class TestExample9:
    def test_same_sequence_as_eager(self):
        graph = example9_graph()
        s, t = graph.vertex_id("Alix"), graph.vertex_id("Bob")
        ann, trimmed, resumable = _setup(graph, example9_automaton(), s, t)
        eager = [
            w.edges
            for w in enumerate_walks(
                graph, trimmed, ann.lam, t, ann.target_states
            )
        ]
        lazy = [
            w.edges
            for w in enumerate_memoryless(
                graph, resumable, ann.lam, t, ann.target_states
            )
        ]
        assert lazy == eager

    def test_resume_from_any_output(self):
        """next_output(w_i) returns w_{i+1}, from any starting point —
        the defining property of a memoryless algorithm."""
        graph = example9_graph()
        s, t = graph.vertex_id("Alix"), graph.vertex_id("Bob")
        ann, trimmed, resumable = _setup(graph, example9_automaton(), s, t)
        eager = [
            w.edges
            for w in enumerate_walks(
                graph, trimmed, ann.lam, t, ann.target_states
            )
        ]
        for i, current in enumerate(eager):
            successor = next_output(
                graph, resumable, ann.lam, t, ann.target_states, current
            )
            if i + 1 < len(eager):
                assert successor is not None
                assert successor.edges == eager[i + 1]
            else:
                assert successor is None

    def test_first_output(self):
        graph = example9_graph()
        s, t = graph.vertex_id("Alix"), graph.vertex_id("Bob")
        ann, trimmed, resumable = _setup(graph, example9_automaton(), s, t)
        first = next_output(
            graph, resumable, ann.lam, t, ann.target_states, None
        )
        eager = next(
            iter(
                enumerate_walks(
                    graph, trimmed, ann.lam, t, ann.target_states
                )
            )
        )
        assert first.edges == eager.edges

    def test_structure_never_mutated(self):
        """Calling next_output repeatedly must not change the shared
        resumable structure (it is read-only by design)."""
        graph = example9_graph()
        s, t = graph.vertex_id("Alix"), graph.vertex_id("Bob")
        ann, _, resumable = _setup(graph, example9_automaton(), s, t)
        w = next_output(graph, resumable, ann.lam, t, ann.target_states)
        # Same call twice: same result (no hidden cursor state).
        w2 = next_output(graph, resumable, ann.lam, t, ann.target_states)
        assert w.edges == w2.edges


class TestEdgeCases:
    def test_empty_answer_set(self):
        graph = example9_graph()
        s, t = graph.vertex_id("Bob"), graph.vertex_id("Alix")
        ann, _, resumable = _setup(graph, example9_automaton(), s, t)
        assert ann.lam is None
        assert (
            next_output(graph, resumable, ann.lam, t, ann.target_states)
            is None
        )
        assert (
            list(
                enumerate_memoryless(
                    graph, resumable, ann.lam, t, ann.target_states
                )
            )
            == []
        )

    def test_lam_zero(self):
        from repro.automata import NFA

        graph = example9_graph()
        nfa = NFA(1)
        nfa.add_transition(0, "h", 0)
        nfa.set_initial(0)
        nfa.set_final(0)
        alix = graph.vertex_id("Alix")
        ann, _, resumable = _setup(graph, nfa, alix, alix)
        assert ann.lam == 0
        walks = list(
            enumerate_memoryless(
                graph, resumable, ann.lam, alix, ann.target_states
            )
        )
        assert len(walks) == 1 and walks[0].length == 0
        # The trivial walk has no successor.
        assert (
            next_output(
                graph, resumable, ann.lam, alix, ann.target_states, ()
            )
            is None
        )


class TestProperties:
    @given(small_instances())
    @settings(max_examples=60, deadline=None)
    def test_memoryless_equals_eager(self, instance):
        graph, nfa, s, t = instance
        ann, trimmed, resumable = _setup(graph, nfa, s, t)
        eager = [
            w.edges
            for w in enumerate_walks(
                graph, trimmed, ann.lam, t, ann.target_states
            )
        ]
        lazy = [
            w.edges
            for w in enumerate_memoryless(
                graph, resumable, ann.lam, t, ann.target_states
            )
        ]
        assert lazy == eager

    @given(small_instances())
    @settings(max_examples=40, deadline=None)
    def test_resume_property(self, instance):
        graph, nfa, s, t = instance
        ann, trimmed, resumable = _setup(graph, nfa, s, t)
        eager = [
            w.edges
            for w in enumerate_walks(
                graph, trimmed, ann.lam, t, ann.target_states
            )
        ]
        if not eager or eager == [()]:
            return
        for i, current in enumerate(eager):
            successor = next_output(
                graph, resumable, ann.lam, t, ann.target_states, current
            )
            expected = eager[i + 1] if i + 1 < len(eager) else None
            if expected is None:
                assert successor is None
            else:
                assert successor is not None
                assert successor.edges == expected
