"""Unit tests for run-count multiplicities (Section 5.3)."""

import pytest
from hypothesis import given, settings

from repro.core.compile import compile_query
from repro.core.engine import DistinctShortestWalks
from repro.core.multiplicity import count_accepting_runs
from repro.exceptions import QueryError
from repro.workloads.fraud import (
    EXAMPLE9_EDGE_IDS,
    example9_automaton,
    example9_graph,
)

from tests.conftest import small_instances


def _edges(*names):
    return tuple(EXAMPLE9_EDGE_IDS[n] for n in names)


class TestExample9:
    """Example 9 discusses each walk's accepted label words; since the
    automaton is unambiguous, runs == accepted words."""

    def test_w4_has_three_runs(self):
        graph = example9_graph()
        cq = compile_query(graph, example9_automaton())
        # w4 = ⟨e2, e4, e8⟩ carries shh, hhs, shs — three runs.
        assert count_accepting_runs(cq, _edges("e2", "e4", "e8")) == 3

    def test_w1_w2_w3(self):
        graph = example9_graph()
        cq = compile_query(graph, example9_automaton())
        assert count_accepting_runs(cq, _edges("e1", "e5", "e8")) == 1
        assert count_accepting_runs(cq, _edges("e1", "e6", "e8")) == 2
        assert count_accepting_runs(cq, _edges("e2", "e3", "e7")) == 2

    def test_non_matching_walk_has_zero(self):
        graph = example9_graph()
        cq = compile_query(graph, example9_automaton())
        assert count_accepting_runs(cq, _edges("e1", "e7")) == 0

    def test_empty_walk(self):
        graph = example9_graph()
        cq = compile_query(graph, example9_automaton())
        assert count_accepting_runs(cq, ()) == 0  # ε ∉ L.

    def test_engine_integration(self):
        graph = example9_graph()
        engine = DistinctShortestWalks(
            graph, example9_automaton(), "Alix", "Bob"
        )
        by_edges = {
            w.edges: m for w, m in engine.enumerate_with_multiplicity()
        }
        assert by_edges == {
            _edges("e2", "e4", "e8"): 3,
            _edges("e1", "e5", "e8"): 1,
            _edges("e1", "e6", "e8"): 2,
            _edges("e2", "e3", "e7"): 2,
        }

    def test_epsilon_query_counts_on_eliminated(self):
        """ε-NFAs are counted on the canonical eliminated automaton."""
        from repro.automata import regex_to_nfa

        graph = example9_graph()
        engine = DistinctShortestWalks(
            graph, regex_to_nfa("h* s (h | s)*"), "Alix", "Bob"
        )
        multiplicities = {
            w.edges: m for w, m in engine.enumerate_with_multiplicity()
        }
        assert all(m >= 1 for m in multiplicities.values())

    def test_eps_compiled_query_rejected(self):
        from repro.automata import regex_to_nfa

        graph = example9_graph()
        cq = compile_query(
            graph, regex_to_nfa("h s"), eliminate_epsilon=False
        )
        with pytest.raises(QueryError):
            count_accepting_runs(cq, ())


class TestAmbiguousCounting:
    def test_runs_multiply_across_states(self):
        """A two-way state split doubles the run count."""
        from repro.automata import NFA
        from repro.graph import GraphBuilder

        b = GraphBuilder()
        b.add_edge("x", "y", ["a"])
        b.add_edge("y", "z", ["a"])
        graph = b.build()
        nfa = NFA(4)
        nfa.add_transition(0, "a", 1)
        nfa.add_transition(0, "a", 2)
        nfa.add_transition(1, "a", 3)
        nfa.add_transition(2, "a", 3)
        nfa.set_initial(0)
        nfa.set_final(3)
        cq = compile_query(graph, nfa)
        assert count_accepting_runs(cq, (0, 1)) == 2

    def test_labels_multiply_runs(self):
        """Two labels firing the same transition give two runs."""
        from repro.automata import NFA
        from repro.graph import GraphBuilder

        b = GraphBuilder()
        b.add_edge("x", "y", ["a", "b"])
        graph = b.build()
        nfa = NFA(2)
        nfa.add_transition(0, "a", 1)
        nfa.add_transition(0, "b", 1)
        nfa.set_initial(0)
        nfa.set_final(1)
        cq = compile_query(graph, nfa)
        assert count_accepting_runs(cq, (0,)) == 2


class TestProperties:
    @given(small_instances())
    @settings(max_examples=40, deadline=None)
    def test_every_answer_has_positive_multiplicity(self, instance):
        graph, nfa, s, t = instance
        engine = DistinctShortestWalks(graph, nfa, s, t)
        for walk, multiplicity in engine.enumerate_with_multiplicity():
            assert multiplicity >= 1

    @given(small_instances())
    @settings(max_examples=40, deadline=None)
    def test_multiplicity_bounded_by_words_times_runs(self, instance):
        """Multiplicity ≤ (number of label words) × |Q|^(λ+1) — a loose
        sanity bound that catches sign/overflow style bugs.  A run on
        a word of length λ is a sequence of λ+1 states (the initial
        state is a choice too), hence the +1 in the exponent."""
        graph, nfa, s, t = instance
        engine = DistinctShortestWalks(graph, nfa, s, t)
        for walk, multiplicity in engine.enumerate_with_multiplicity():
            n_words = 1
            for labels in walk.label_sets():
                n_words *= len(labels)
            assert multiplicity <= n_words * (
                nfa.n_states ** (walk.length + 1)
            )


class TestTrackedRuns:
    """The §5.3 'keep track along the recursive calls' variant."""

    def test_example9_tracked_matches_recompute(self):
        from repro.workloads.fraud import example9_automaton, example9_graph

        engine = DistinctShortestWalks(
            example9_graph(), example9_automaton(), "Alix", "Bob"
        )
        recomputed = list(engine.enumerate_with_multiplicity())
        tracked = list(
            engine.enumerate_with_multiplicity(method="tracked")
        )
        assert [(w.edges, m) for w, m in tracked] == [
            (w.edges, m) for w, m in recomputed
        ]
        # Example 9: w4 carries 3 suitable labels, w2/w3 carry 2, w1
        # carries 1 — runs coincide with labels for this automaton.
        assert sorted(m for _, m in tracked) == [1, 2, 2, 3]

    def test_bad_method_rejected(self):
        import pytest

        from repro.exceptions import QueryError
        from repro.workloads.fraud import example9_automaton, example9_graph

        engine = DistinctShortestWalks(
            example9_graph(), example9_automaton(), "Alix", "Bob"
        )
        with pytest.raises(QueryError, match="multiplicity method"):
            list(engine.enumerate_with_multiplicity(method="bogus"))

    def test_lambda_zero_tracked(self):
        from repro.automata import NFA
        from repro.workloads.fraud import example9_graph

        nfa = NFA(1)
        nfa.add_transition(0, "h", 0)
        nfa.set_initial(0)
        nfa.set_final(0)
        engine = DistinctShortestWalks(
            example9_graph(), nfa, "Alix", "Alix"
        )
        tracked = list(engine.enumerate_with_multiplicity(method="tracked"))
        assert len(tracked) == 1
        assert tracked[0][0].length == 0 and tracked[0][1] == 1

    @given(small_instances())
    @settings(max_examples=80, deadline=None)
    def test_tracked_matches_recompute_random(self, instance):
        graph, nfa, s, t = instance
        engine = DistinctShortestWalks(graph, nfa, s, t)
        recomputed = [
            (w.edges, m) for w, m in engine.enumerate_with_multiplicity()
        ]
        tracked = [
            (w.edges, m)
            for w, m in engine.enumerate_with_multiplicity(method="tracked")
        ]
        assert tracked == recomputed

    @given(small_instances(allow_epsilon=True))
    @settings(max_examples=40, deadline=None)
    def test_tracked_with_epsilon_queries(self, instance):
        graph, nfa, s, t = instance
        engine = DistinctShortestWalks(graph, nfa, s, t)
        recomputed = [
            (w.edges, m) for w, m in engine.enumerate_with_multiplicity()
        ]
        tracked = [
            (w.edges, m)
            for w, m in engine.enumerate_with_multiplicity(method="tracked")
        ]
        assert tracked == recomputed
