"""ε-transition handling — including the regression that motivated
compile-time ε-closure.

The paper's Section 5.1 eliminates ε on the fly inside ``Annotate``
(``PossiblyVisit``).  Transcribed literally, predecessor entries are
propagated to ε-successors only on *first visits* of the direct target
state; the test
:func:`TestPossiblyVisitCounterexample.test_literal_transcription_drops_answers`
documents the instance where that loses answers, and the remaining
tests pin the behaviour of the fix (ε-closed compiled transitions).
"""

from hypothesis import given, settings

from repro.automata import EPSILON, NFA, regex_to_nfa, remove_epsilon
from repro.baselines.oracle import oracle_answer_set
from repro.core.engine import DistinctShortestWalks
from repro.workloads.fraud import example9_graph

from tests.conftest import small_graphs, small_nfas
from hypothesis import strategies as st


class TestThompsonQueries:
    def test_example9_via_thompson(self):
        """The regression: ε-NFA compiled queries must find all four
        answers (the literal PossiblyVisit transcription found two)."""
        graph = example9_graph()
        nfa = regex_to_nfa("h* s (h | s)*")  # Thompson: ε-transitions.
        assert nfa.has_epsilon
        engine = DistinctShortestWalks(graph, nfa, "Alix", "Bob")
        assert engine.count() == 4

    def test_same_set_as_eliminated(self):
        graph = example9_graph()
        nfa = regex_to_nfa("h* s (h | s)*")
        with_eps = sorted(
            w.edges
            for w in DistinctShortestWalks(graph, nfa, "Alix", "Bob")
        )
        without = sorted(
            w.edges
            for w in DistinctShortestWalks(
                graph, remove_epsilon(nfa), "Alix", "Bob"
            )
        )
        assert with_eps == without


class TestPossiblyVisitCounterexample:
    """The concrete failure mode of the literal Section 5.1 pseudocode.

    Two edges reach the same direct target state at the same BFS level;
    the ε-successor (the only final state) records predecessors for the
    first edge only, so the root certificate S ∩ F can never reach the
    second edge's subtree.
    """

    @staticmethod
    def _instance():
        from repro.graph import GraphBuilder

        b = GraphBuilder()
        # Two parallel length-2 routes x -> m1/m2 -> y.
        b.add_edge("x", "m1", ["a"])
        b.add_edge("x", "m2", ["a"])
        b.add_edge("m1", "y", ["b"])
        b.add_edge("m2", "y", ["b"])
        graph = b.build()
        # a b, with the accepting state reachable only via ε.
        nfa = NFA(4)
        nfa.add_transition(0, "a", 1)
        nfa.add_transition(1, "b", 2)
        nfa.add_transition(2, EPSILON, 3)
        nfa.set_initial(0)
        nfa.set_final(3)
        return graph, nfa

    def test_fixed_pipeline_finds_both(self):
        graph, nfa = self._instance()
        engine = DistinctShortestWalks(graph, nfa, "x", "y")
        assert engine.count() == 2

    def test_literal_transcription_drops_answers(self):
        """Direct demonstration: run Annotate on the *raw* ε tables
        (eliminate_epsilon=False), i.e. the paper's PossiblyVisit, and
        observe the missing predecessor entry."""
        from repro.core.annotate import annotate
        from repro.core.compile import compile_query
        from repro.core.enumerate import enumerate_walks
        from repro.core.trim import trim

        graph, nfa = self._instance()
        cq = compile_query(graph, nfa, eliminate_epsilon=False)
        assert cq.has_eps
        s, t = graph.vertex_id("x"), graph.vertex_id("y")
        ann = annotate(cq, s, t)
        trimmed = trim(graph, ann)
        walks = list(
            enumerate_walks(graph, trimmed, ann.lam, t, ann.target_states)
        )
        # The literal transcription loses one of the two answers: state
        # 3 (the only final state) has a B entry for just one of the
        # two incoming edges.
        assert len(walks) == 1
        b_final = ann.B[t].get(3, {})
        assert len(b_final) == 1  # One cell instead of two.


class TestEpsilonEdgeCases:
    def test_epsilon_only_query_trivial_walk(self):
        graph = example9_graph()
        nfa = NFA(2)
        nfa.add_transition(0, EPSILON, 1)
        nfa.set_initial(0)
        nfa.set_final(1)
        engine = DistinctShortestWalks(graph, nfa, "Alix", "Alix")
        walks = list(engine.enumerate())
        assert engine.lam == 0
        assert len(walks) == 1 and walks[0].length == 0

    def test_epsilon_cycle(self):
        graph = example9_graph()
        nfa = NFA(3)
        nfa.add_transition(0, EPSILON, 1)
        nfa.add_transition(1, EPSILON, 0)
        nfa.add_transition(1, "h", 2)
        nfa.set_initial(0)
        nfa.set_final(2)
        engine = DistinctShortestWalks(graph, nfa, "Alix", "Cassie")
        assert engine.lam == 1

    def test_optional_prefix_query(self):
        graph = example9_graph()
        engine = DistinctShortestWalks(graph, "h? s", "Alix", "Cassie")
        # Alix -e2(h,s)-> Dan? No: target Cassie.  s-only path:
        # Alix -e2-> Dan (s) ... e3 (s): h? s matches ⟨e2,e3⟩ via (h,s)?
        # h then s: yes, length 2.  Also s alone: no direct s-edge
        # Alix->Cassie (e1 is h-only), so λ=2.
        assert engine.lam == 2

    @given(
        small_graphs(),
        small_nfas(allow_epsilon=True),
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_epsilon_instances_match_oracle(self, graph, nfa, si, ti):
        s = si % graph.vertex_count
        t = ti % graph.vertex_count
        engine = DistinctShortestWalks(graph, nfa, s, t)
        got = sorted(w.edges for w in engine.enumerate())
        assert got == oracle_answer_set(graph, nfa, s, t)
