"""Unit tests for the deterministic single-label fast path."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata import NFA, regex_to_nfa
from repro.core.engine import DistinctShortestWalks
from repro.core.simple import (
    SimpleShortestWalks,
    graph_is_single_labeled,
    simple_eligible,
)
from repro.exceptions import QueryError
from repro.graph import GraphBuilder
from repro.graph.generators import chain, grid
from repro.workloads.fraud import example9_automaton, example9_graph


class TestEligibility:
    def test_multilabel_graph_rejected(self):
        assert not graph_is_single_labeled(example9_graph())
        assert not simple_eligible(example9_graph(), example9_automaton())

    def test_single_label_dfa_accepted(self):
        g = grid(2, 2)
        dfa = regex_to_nfa("r d", method="glushkov")
        assert simple_eligible(g, dfa)

    def test_nondeterministic_rejected(self):
        g = grid(2, 2)
        nfa = NFA(2)
        nfa.add_transition(0, "r", 0)
        nfa.add_transition(0, "r", 1)
        nfa.set_initial(0)
        nfa.set_final(1)
        assert not simple_eligible(g, nfa)

    def test_constructor_enforces_eligibility(self):
        with pytest.raises(QueryError):
            SimpleShortestWalks(
                example9_graph(), example9_automaton(), "Alix", "Bob"
            )


class TestCorrectness:
    def test_grid_diagonal(self):
        g = grid(3, 3)
        # Glushkov of (r|d){4} is not deterministic — build by hand:
        nfa = NFA(5)
        for i in range(4):
            nfa.add_transition(i, "r", i + 1)
            nfa.add_transition(i, "d", i + 1)
        nfa.set_initial(0)
        nfa.set_final(4)
        engine = SimpleShortestWalks(g, nfa, "n0_0", "n2_2")
        walks = list(engine.enumerate())
        # C(4,2) = 6 monotone lattice paths.
        assert engine.lam == 4
        assert len(walks) == 6
        assert len(set(w.edges for w in walks)) == 6

    def test_matches_general_engine(self):
        g = grid(3, 4)
        nfa = NFA(6)
        for i in range(5):
            nfa.add_transition(i, "r", i + 1)
            nfa.add_transition(i, "d", i + 1)
        nfa.set_initial(0)
        nfa.set_final(5)
        simple = sorted(
            w.edges
            for w in SimpleShortestWalks(g, nfa, "n0_0", "n2_3").enumerate()
        )
        general = sorted(
            w.edges
            for w in DistinctShortestWalks(g, nfa, "n0_0", "n2_3").enumerate()
        )
        assert simple == general

    def test_no_matching_walk(self):
        g = chain(3, labels=("a",))
        dfa = regex_to_nfa("b", method="glushkov")
        engine = SimpleShortestWalks(g, dfa, "v0", "v3")
        assert engine.lam is None
        assert list(engine.enumerate()) == []

    def test_lambda_zero(self):
        g = chain(2, labels=("a",))
        dfa = regex_to_nfa("a*", method="glushkov")
        engine = SimpleShortestWalks(g, dfa, "v1", "v1")
        walks = list(engine.enumerate())
        assert engine.lam == 0
        assert len(walks) == 1 and walks[0].length == 0

    def test_multi_edge_single_label(self):
        g = chain(2, labels=("a",), parallel=3)
        dfa = regex_to_nfa("a a", method="glushkov")
        engine = SimpleShortestWalks(g, dfa, "v0", "v2")
        assert sum(1 for _ in engine.enumerate()) == 9

    def test_iter_protocol(self):
        g = chain(1)
        dfa = regex_to_nfa("a", method="glushkov")
        assert len(list(SimpleShortestWalks(g, dfa, "v0", "v1"))) == 1


class TestRandomizedAgainstGeneral:
    @given(
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=2, max_value=14),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_single_label_instances(self, seed, n, m):
        import random

        rng = random.Random(seed)
        b = GraphBuilder()
        names = [f"v{i}" for i in range(n)]
        b.add_vertices(names)
        for _ in range(m):
            b.add_edge(
                rng.choice(names),
                rng.choice(names),
                [rng.choice(["a", "b"])],
            )
        graph = b.build()
        # Random DFA with ≤ 3 states.
        k = rng.randint(1, 3)
        nfa = NFA(k)
        for q in range(k):
            for symbol in ("a", "b"):
                if rng.random() < 0.8:
                    nfa.add_transition(q, symbol, rng.randrange(k))
        nfa.set_initial(0)
        nfa.set_final(
            *[q for q in range(k) if rng.random() < 0.5] or [k - 1]
        )
        s, t = rng.randrange(n), rng.randrange(n)
        assert simple_eligible(graph, nfa)
        simple = sorted(
            w.edges for w in SimpleShortestWalks(graph, nfa, s, t).enumerate()
        )
        general = sorted(
            w.edges for w in DistinctShortestWalks(graph, nfa, s, t).enumerate()
        )
        assert simple == general
