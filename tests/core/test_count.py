"""Unit and property tests for the counting module."""

import pytest
from hypothesis import given, settings

from repro.baselines.naive import NaiveStats, naive_enumerate
from repro.core.cheapest import DistinctCheapestWalks
from repro.core.compile import compile_query
from repro.core.count import (
    count_distinct_shortest,
    count_shortest_product_paths,
    count_total_multiplicity,
)
from repro.core.engine import DistinctShortestWalks
from repro.exceptions import QueryError
from repro.graph.builder import GraphBuilder
from repro.workloads.fraud import example9_automaton, example9_graph
from repro.workloads.worstcase import diamond_chain, duplicate_bomb

from tests.conftest import small_instances


def _count_via_engine(engine) -> int:
    ann = engine.annotation
    return count_distinct_shortest(
        engine.graph, ann, ann.lam, engine.target, ann.target_states
    )


class TestExample9:
    def test_four_answers(self):
        engine = DistinctShortestWalks(
            example9_graph(), example9_automaton(), "Alix", "Bob"
        )
        assert _count_via_engine(engine) == 4
        assert engine.count(method="dp") == 4
        assert engine.count(method="enumerate") == 4

    def test_product_paths_match_naive(self):
        graph = example9_graph()
        cq = compile_query(graph, example9_automaton())
        s, t = graph.vertex_id("Alix"), graph.vertex_id("Bob")
        stats = NaiveStats()
        list(naive_enumerate(cq, s, t, stats))
        lam, paths = count_shortest_product_paths(cq, s, t)
        assert lam == stats.lam == 3
        assert paths == stats.product_paths

    def test_total_multiplicity_matches_per_walk_sum(self):
        engine = DistinctShortestWalks(
            example9_graph(), example9_automaton(), "Alix", "Bob"
        )
        per_walk = sum(
            mult for _, mult in engine.enumerate_with_multiplicity()
        )
        cq = compile_query(example9_graph(), example9_automaton())
        graph = cq.graph
        lam, total = count_total_multiplicity(
            cq, graph.vertex_id("Alix"), graph.vertex_id("Bob")
        )
        assert lam == 3
        assert total == per_walk
        # w4 carries 3 accepting labels, w2 and w3 carry 2, w1 carries 1
        # (Example 9); runs coincide with labels for this automaton.
        assert total >= 4


class TestAstronomicalCounts:
    def test_diamond_chain_exact_power(self):
        graph, nfa, s, t = diamond_chain(200, parallel=2)
        engine = DistinctShortestWalks(graph, nfa, s, t)
        # 2**200 answers: only the DP can count them.
        assert engine.count(method="dp") == 2 ** 200

    def test_duplicate_bomb_blowup_ratio(self):
        graph, nfa, s, t = duplicate_bomb(30, 3)
        cq = compile_query(graph, nfa)
        si, ti = graph.vertex_id(s), graph.vertex_id(t)
        lam, paths = count_shortest_product_paths(cq, si, ti)
        assert lam == 30
        assert paths == 3 ** 30  # m**k copies of the single answer.
        engine = DistinctShortestWalks(graph, nfa, s, t)
        assert engine.count(method="dp") == 1


class TestEdgeCases:
    def test_no_matching_walk(self):
        graph = example9_graph()
        engine = DistinctShortestWalks(
            graph, example9_automaton(), "Bob", "Alix"
        )
        assert engine.count(method="dp") == 0
        cq = compile_query(graph, example9_automaton())
        bob, alix = graph.vertex_id("Bob"), graph.vertex_id("Alix")
        assert count_shortest_product_paths(cq, bob, alix) == (None, 0)
        assert count_total_multiplicity(cq, bob, alix) == (None, 0)

    def test_lambda_zero(self):
        from repro.automata import NFA

        graph = example9_graph()
        nfa = NFA(1)
        nfa.add_transition(0, "h", 0)
        nfa.set_initial(0)
        nfa.set_final(0)
        engine = DistinctShortestWalks(graph, nfa, "Alix", "Alix")
        assert engine.count(method="dp") == 1
        cq = compile_query(graph, nfa)
        alix = graph.vertex_id("Alix")
        assert count_shortest_product_paths(cq, alix, alix) == (0, 1)
        assert count_total_multiplicity(cq, alix, alix) == (0, 1)

    def test_bad_method_rejected(self):
        engine = DistinctShortestWalks(
            example9_graph(), example9_automaton(), "Alix", "Bob"
        )
        with pytest.raises(QueryError, match="count method"):
            engine.count(method="bogus")

    def test_epsilon_query_rejected_by_counters(self):
        from repro.automata import regex_to_nfa

        graph = example9_graph()
        cq = compile_query(
            graph, regex_to_nfa("h s"), eliminate_epsilon=False
        )
        with pytest.raises(QueryError):
            count_shortest_product_paths(cq, 0, 1)
        with pytest.raises(QueryError):
            count_total_multiplicity(cq, 0, 1)


class TestCheapestCount:
    def test_cost_budgeted_dp(self):
        builder = GraphBuilder()
        builder.add_edge("a", "b", ["x"], cost=2)
        builder.add_edge("a", "b", ["x"], cost=2)
        builder.add_edge("b", "c", ["x"], cost=3)
        builder.add_edge("a", "c", ["x"], cost=5)
        graph = builder.build()
        from repro.automata import regex_to_nfa

        cheap = DistinctCheapestWalks(graph, regex_to_nfa("x | x x"), "a", "c")
        assert cheap.count(method="enumerate") == cheap.count(method="dp") == 3

    def test_bad_method_rejected(self):
        builder = GraphBuilder()
        builder.add_edge("a", "b", ["x"], cost=1)
        from repro.automata import regex_to_nfa

        cheap = DistinctCheapestWalks(
            builder.build(), regex_to_nfa("x"), "a", "b"
        )
        with pytest.raises(QueryError, match="count method"):
            cheap.count(method="bogus")


class TestProperties:
    @given(small_instances())
    @settings(max_examples=80, deadline=None)
    def test_dp_matches_enumeration(self, instance):
        graph, nfa, s, t = instance
        engine = DistinctShortestWalks(graph, nfa, s, t)
        assert engine.count(method="dp") == engine.count(method="enumerate")

    @given(small_instances())
    @settings(max_examples=60, deadline=None)
    def test_product_paths_match_naive_counters(self, instance):
        graph, nfa, s, t = instance
        cq = compile_query(graph, nfa)
        stats = NaiveStats()
        outputs = list(naive_enumerate(cq, s, t, stats))
        lam, paths = count_shortest_product_paths(cq, s, t)
        assert lam == stats.lam
        if stats.lam not in (None, 0):
            assert paths == stats.product_paths
        assert (lam is None) == (not outputs)

    @given(small_instances())
    @settings(max_examples=60, deadline=None)
    def test_multiplicity_total_matches_per_walk_sum(self, instance):
        graph, nfa, s, t = instance
        engine = DistinctShortestWalks(graph, nfa, s, t)
        per_walk = sum(
            mult for _, mult in engine.enumerate_with_multiplicity()
        )
        cq = compile_query(graph, nfa)
        _, total = count_total_multiplicity(cq, s, t)
        assert total == per_walk

    @given(small_instances())
    @settings(max_examples=60, deadline=None)
    def test_counting_hierarchy(self, instance):
        """distinct walks ≤ product paths ≤ total multiplicity."""
        graph, nfa, s, t = instance
        engine = DistinctShortestWalks(graph, nfa, s, t)
        distinct = engine.count(method="dp")
        cq = compile_query(graph, nfa)
        lam, paths = count_shortest_product_paths(cq, s, t)
        _, total = count_total_multiplicity(cq, s, t)
        if lam == 0:
            return  # The trivial walk is witnessed without edges.
        assert distinct <= paths <= total
