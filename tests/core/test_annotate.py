"""Unit tests for ``Annotate`` — including the Lemma 10 invariants."""

import pytest
from hypothesis import given, settings

from repro.baselines.oracle import oracle_lam
from repro.core.annotate import annotate
from repro.core.compile import compile_query
from repro.workloads.fraud import example9_automaton, example9_graph

from tests.conftest import small_instances


@pytest.fixture
def annotated():
    graph = example9_graph()
    cq = compile_query(graph, example9_automaton())
    ann = annotate(cq, graph.vertex_id("Alix"), graph.vertex_id("Bob"))
    return graph, cq, ann


class TestExample9Lengths:
    """The L maps must match the paper's Figure 3 exactly."""

    def test_lam(self, annotated):
        _, _, ann = annotated
        assert ann.lam == 3

    def test_L_values(self, annotated):
        graph, _, ann = annotated
        expected = {
            "Alix": {0: 0},
            "Bob": {0: 2, 1: 3},
            "Cassie": {0: 1, 1: 2},
            "Dan": {0: 1, 1: 1},
            "Eve": {0: 2, 1: 2},
        }
        for name, values in expected.items():
            assert ann.L[graph.vertex_id(name)] == values, name

    def test_target_states(self, annotated):
        _, _, ann = annotated
        assert ann.target_states == frozenset({1})


class TestExample9BackMaps:
    """The B maps must match Figure 3 (as multisets per cell)."""

    def test_B_values(self, annotated):
        graph, _, ann = annotated
        # Figure 3, rewritten as {vertex: {state: {tgt_idx: multiset}}}.
        expected = {
            "Bob": {0: {1: [0]}, 1: {0: [1, 0, 1], 1: [1]}},
            "Cassie": {0: {1: [0]}, 1: {0: [0, 1]}},
            "Dan": {0: {0: [0]}, 1: {0: [0]}},
            "Eve": {0: {0: [0], 1: [0]}, 1: {0: [1], 2: [0]}},
            "Alix": {},
        }
        for name, per_state in expected.items():
            v = graph.vertex_id(name)
            got = ann.B[v]
            assert set(got) == set(per_state), name
            for state, cells in per_state.items():
                assert set(got[state]) == set(cells), (name, state)
                for idx, preds in cells.items():
                    assert sorted(got[state][idx]) == sorted(preds), (
                        name,
                        state,
                        idx,
                    )


class TestEdgeCases:
    def test_no_matching_walk(self):
        graph = example9_graph()
        cq = compile_query(graph, example9_automaton())
        # Bob has no outgoing edges: nothing reaches Alix from Bob.
        ann = annotate(cq, graph.vertex_id("Bob"), graph.vertex_id("Alix"))
        assert ann.lam is None
        assert ann.target_states == frozenset()

    def test_lambda_zero(self):
        """s == t with ε ∈ L(A): the trivial walk is the answer."""
        from repro.automata import NFA

        graph = example9_graph()
        nfa = NFA(1)
        nfa.add_transition(0, "h", 0)
        nfa.set_initial(0)
        nfa.set_final(0)
        cq = compile_query(graph, nfa)
        alix = graph.vertex_id("Alix")
        ann = annotate(cq, alix, alix)
        assert ann.lam == 0
        assert ann.target_states == frozenset({0})

    def test_source_equals_target_with_cycle(self):
        """s == t but ε ∉ L(A): must find a genuine cycle."""
        from repro.automata import NFA
        from repro.graph import GraphBuilder

        b = GraphBuilder()
        b.add_edge("x", "y", ["a"])
        b.add_edge("y", "x", ["a"])
        graph = b.build()
        # L(A) = (aa)+ — crucially ε ∉ L(A), so λ = 2, not 0.
        nfa = NFA(3)
        nfa.add_transition(0, "a", 1)
        nfa.add_transition(1, "a", 2)
        nfa.add_transition(2, "a", 1)
        nfa.set_initial(0)
        nfa.set_final(2)
        cq = compile_query(graph, nfa)
        x = graph.vertex_id("x")
        ann = annotate(cq, x, x)
        assert ann.lam == 2

    def test_level_completes_after_stop(self):
        """The whole BFS level λ runs to completion (all B entries)."""
        graph, _, ann = (
            example9_graph(),
            None,
            None,
        )
        cq = compile_query(graph, example9_automaton())
        ann = annotate(cq, graph.vertex_id("Alix"), graph.vertex_id("Bob"))
        # B_Bob[1] must have entries for BOTH e8 (ti 0) and e7 (ti 1),
        # even though e8's entry alone triggers the stop flag.
        bob = graph.vertex_id("Bob")
        assert set(ann.B[bob][1]) == {0, 1}

    def test_saturated_run_has_no_lam(self):
        graph = example9_graph()
        cq = compile_query(graph, example9_automaton())
        ann = annotate(cq, graph.vertex_id("Alix"), saturate=True)
        assert ann.saturated
        assert ann.lam is None
        # target_info recovers per-target λ.
        assert ann.target_info(graph.vertex_id("Bob"))[0] == 3
        assert ann.target_info(graph.vertex_id("Alix"))[0] is None


class TestLemma10Properties:
    """Property-based checks of Lemma 10 on random instances."""

    @given(small_instances())
    @settings(max_examples=60, deadline=None)
    def test_L_equals_oracle_product_distance(self, instance):
        """L_u[p] is the product-BFS distance of (u, p) — checked
        against an independent product BFS."""
        graph, nfa, s, t = instance
        cq = compile_query(graph, nfa)
        ann = annotate(cq, s, saturate=True)

        # Independent reference: plain BFS over (vertex, state) pairs.
        dist = {}
        frontier = []
        for p in cq.initial_closure:
            dist[(s, p)] = 0
            frontier.append((s, p))
        level = 0
        while frontier:
            level += 1
            current, frontier = frontier, []
            for v, q in current:
                for e in graph.out_edges(v):
                    u = graph.tgt(e)
                    for a in graph.labels(e):
                        for p in cq.delta[q].get(a, ()):
                            if (u, p) not in dist:
                                dist[(u, p)] = level
                                frontier.append((u, p))

        for u in graph.vertices():
            for p in range(cq.n_states):
                assert ann.L[u].get(p) == dist.get((u, p)), (u, p)

    @given(small_instances())
    @settings(max_examples=60, deadline=None)
    def test_lam_matches_oracle(self, instance):
        graph, nfa, s, t = instance
        cq = compile_query(graph, nfa)
        ann = annotate(cq, s, t)
        assert ann.lam == oracle_lam(graph, nfa, s, t)

    @given(small_instances())
    @settings(max_examples=60, deadline=None)
    def test_B_entries_are_witnessed(self, instance):
        """Lemma 10(2), soundness direction: every B entry corresponds
        to a real transition firing from the right level."""
        graph, nfa, s, t = instance
        cq = compile_query(graph, nfa)
        ann = annotate(cq, s, saturate=True)
        for u in graph.vertices():
            for p, cells in ann.B[u].items():
                for idx, preds in cells.items():
                    e = graph.in_edges(u)[idx]
                    assert graph.tgt(e) == u
                    for q in preds:
                        v = graph.src(e)
                        # q is reachable at v one level earlier...
                        assert ann.L[v][q] == ann.L[u][p] - 1
                        # ...and some label of e fires q -> p.
                        fired = any(
                            p in cq.delta[q].get(a, ())
                            for a in graph.labels(e)
                        )
                        assert fired

    @given(small_instances())
    @settings(max_examples=60, deadline=None)
    def test_B_size_bound(self, instance):
        """Lemma 10(3): |B_u[p][i]| ≤ Σ_a |Δ⁻¹(a, p)|."""
        graph, nfa, s, t = instance
        cq = compile_query(graph, nfa)
        ann = annotate(cq, s, saturate=True)
        # Precompute Σ_a |Δ⁻¹(a, p)| per state p.
        bound = [0] * cq.n_states
        for q in range(cq.n_states):
            for a, targets in cq.delta[q].items():
                for p in targets:
                    bound[p] += 1
        for u in graph.vertices():
            for p, cells in ann.B[u].items():
                for preds in cells.values():
                    assert len(preds) <= bound[p]
