"""Unit tests for the measurement harness."""

import time

import pytest

from repro.bench import (
    DelayStats,
    format_table,
    loglog_slope,
    measure_delays,
    measure_preprocessing,
    time_call,
)


class TestMeasureDelays:
    def test_counts_outputs(self):
        stats = measure_delays(lambda: iter(range(5)))
        assert stats.outputs == 5
        assert len(stats.delays_s) == 4

    def test_limit(self):
        stats = measure_delays(lambda: iter(range(100)), limit=3)
        assert stats.outputs == 3

    def test_limit_closes_generators(self):
        closed = []

        def gen():
            try:
                for i in range(100):
                    yield i
            finally:
                closed.append(True)

        measure_delays(gen, limit=2)
        assert closed == [True]

    def test_empty_iterator(self):
        stats = measure_delays(lambda: iter(()))
        assert stats.outputs == 0
        assert stats.max_delay_s == 0.0
        assert stats.mean_delay_s == 0.0

    def test_delays_measure_sleep(self):
        def slow():
            yield 1
            time.sleep(0.01)
            yield 2

        stats = measure_delays(slow)
        assert stats.max_delay_s >= 0.009

    def test_percentile(self):
        stats = DelayStats(delays_s=[0.1, 0.2, 0.3, 0.4, 1.0])
        assert stats.percentile_delay_s(0.5) == 0.3
        assert stats.percentile_delay_s(0.99) == 1.0
        assert DelayStats().percentile_delay_s(0.9) == 0.0


class TestTimers:
    def test_measure_preprocessing(self):
        elapsed = measure_preprocessing(lambda: time.sleep(0.005))
        assert elapsed >= 0.004

    def test_time_call_best_of(self):
        assert time_call(lambda: None, repeat=2) < 0.01


class TestLogLogSlope:
    def test_linear(self):
        xs = [10, 100, 1000]
        ys = [5.0, 50.0, 500.0]
        assert abs(loglog_slope(xs, ys) - 1.0) < 1e-9

    def test_quadratic(self):
        xs = [10, 100, 1000]
        ys = [x * x for x in xs]
        assert abs(loglog_slope(xs, ys) - 2.0) < 1e-9

    def test_constant_is_zero(self):
        assert abs(loglog_slope([10, 100], [7.0, 7.0])) < 1e-9

    def test_bad_input(self):
        with pytest.raises(ValueError):
            loglog_slope([1], [1])
        with pytest.raises(ValueError):
            loglog_slope([5, 5], [1, 2])


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "value"], [["x", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}

    def test_float_rendering(self):
        text = format_table(["v"], [[0.000123], [123456.0], [3.14159]])
        assert "0.000123" in text
        assert "123456" in text
        assert "3.14" in text


class TestExperimentExtraction:
    def test_extract_tables(self):
        from repro.bench.experiments import extract_tables

        output = """\
some preamble
## EXP-FOO (a): first table
col1  col2
----  ----
1     2
.
## EXP-BAR: second table
x
--
9
..
1 passed in 2s
"""
        tables = extract_tables(output)
        assert len(tables) == 2
        assert tables[0].startswith("## EXP-FOO")
        assert "1     2" in tables[0]
        assert tables[1].startswith("## EXP-BAR")
        assert "9" in tables[1]
        assert "passed" not in tables[1]

    def test_extract_handles_trailing_table(self):
        from repro.bench.experiments import extract_tables

        tables = extract_tables("## EXP-X: only\nrow")
        assert tables == ["## EXP-X: only\nrow"]

    def test_runner_on_subset(self, tmp_path):
        """End-to-end: regenerate the Figure 3 tables via the tool."""
        import os

        from repro.bench.experiments import main

        out = tmp_path / "tables.txt"
        cwd = os.getcwd()
        code = main(["-k", "figure3", "-o", str(out)])
        assert cwd == os.getcwd()
        assert code == 0
        text = out.read_text()
        assert "## EXP-F3" in text
        assert "## EXP-E9" in text
