"""Cross-worker stats aggregation against a real serving pool.

These tests pin the serve-tier half of the observability tentpole:
workers snapshot their registries over the control pipe, the owner
merges (sum counters / max gauges / add histogram buckets) and serves
the result as a ``{"stats": ...}`` JSONL request, a Prometheus text
endpoint, and a final drain-path snapshot.  The degraded path is
exercised too: an unreachable worker yields a *partial but labeled*
aggregation, never a hang or a crash.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal

from repro.graph.builder import GraphBuilder
from repro.serve import ServeClient
from repro.serve.server import ServeServer


def _demo_graph():
    builder = GraphBuilder()
    builder.add_edge("Alix", "Dan", ["h", "s"])
    builder.add_edge("Dan", "Eve", ["h"])
    builder.add_edge("Eve", "Bob", ["s"])
    builder.add_edge("Alix", "Bob", ["t"])
    return builder.build()


async def _booted(**kwargs) -> ServeServer:
    server = ServeServer(_demo_graph(), **kwargs)
    await server.start()
    return server


async def _tcp_exchange(port: int, lines):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        for line in lines:
            writer.write(json.dumps(line).encode() + b"\n")
        await writer.drain()
        out = []
        for _ in range(len(lines)):
            raw = await asyncio.wait_for(reader.readline(), timeout=30)
            assert raw, "server closed mid-batch"
            out.append(json.loads(raw))
        return out
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def _walk_names(spans):
    for span in spans:
        yield span["name"]
        yield from _walk_names(span.get("children", []))


def test_single_query_yields_full_span_tree_via_stats_request() -> None:
    """The acceptance path: one served query, then the JSONL stats
    request returns merged counters plus the complete
    parse->compile->annotate->trim->enumerate span tree."""

    async def scenario():
        server = await _booted(workers=4)
        try:
            port = await server.start_tcp("127.0.0.1", 0)
            query = {
                "query": "h* s (h | s)*",
                "source": "Alix",
                "target": "Bob",
            }
            (response,) = await _tcp_exchange(port, [query])
            assert response["status"] == "ok"

            (answer,) = await _tcp_exchange(
                port, [{"stats": True, "id": "s1"}]
            )
            assert answer["status"] == "ok"
            assert answer["id"] == "s1"
            stats = answer["stats"]
            assert stats["partial"] is False
            assert len(stats["workers"]) == 4
            assert all(w["status"] == "ok" for w in stats["workers"])
            assert {w["index"] for w in stats["workers"]} == {0, 1, 2, 3}

            merged = stats["merged"]
            assert merged["metrics"]["counters"]["service.requests"] == 1
            assert merged["service"]["requests"] == 1
            hist = merged["metrics"]["histograms"]["service.request_seconds"]
            assert hist["count"] == 1
            assert "p95" in hist
            # The owner's own instruments ride along in the merge.
            assert merged["metrics"]["counters"]["serve.requests"] >= 1
            assert merged["metrics"]["gauges"]["serve.workers"] == 4

            spans = [
                entry["spans"]
                for worker in stats["workers"]
                for entry in worker["slowlog"]
            ]
            assert len(spans) == 1  # exactly one worker served it
            assert list(_walk_names(spans[0])) == [
                "parse",
                "compile",
                "annotate",
                "trim",
                "enumerate",
            ]
            annotate = [s for s in spans[0] if s["name"] == "annotate"][0]
            assert annotate["tags"]["cached"] is False
        finally:
            await server.shutdown()

    asyncio.run(scenario())


def test_stats_answer_without_any_query_traffic() -> None:
    """An idle pool still answers — the admin request must not depend
    on a request having warmed anything."""

    async def scenario():
        server = await _booted(workers=2)
        try:
            port = await server.start_tcp("127.0.0.1", 0)
            (answer,) = await _tcp_exchange(port, [{"stats": True}])
            assert answer["status"] == "ok"
            assert answer["stats"]["partial"] is False
            merged = answer["stats"]["merged"]
            assert merged["service"]["requests"] == 0
        finally:
            await server.shutdown()

    asyncio.run(scenario())


def test_stopped_worker_yields_partial_labeled_aggregation() -> None:
    """SIGSTOP one worker mid-aggregation: the collect times out on
    that worker only, labels it unavailable, and the rest of the pool
    still reports — partial=True, nothing hangs."""

    async def scenario():
        server = await _booted(workers=2)
        stopped = None
        try:
            await server.start_tcp("127.0.0.1", 0)
            stopped = server.worker_pids()[0]
            os.kill(stopped, signal.SIGSTOP)
            stats = await server.collect_stats(timeout_s=0.5)
            assert stats["partial"] is True
            by_status = {}
            for worker in stats["workers"]:
                by_status.setdefault(worker["status"], []).append(worker)
            assert len(by_status.get("ok", [])) == 1
            (down,) = by_status["unavailable"]
            assert down["reason"] in ("timeout", "pipe closed", "crashed")
            assert down["pid"] == stopped
            # The merge covers the live worker, not garbage.
            assert stats["merged"]["service"]["requests"] == 0
        finally:
            if stopped is not None:
                os.kill(stopped, signal.SIGCONT)
            await server.shutdown()

    asyncio.run(scenario())


def test_killed_worker_yields_partial_labeled_aggregation() -> None:
    async def scenario():
        server = await _booted(workers=2)
        try:
            await server.start_tcp("127.0.0.1", 0)
            os.kill(server.worker_pids()[1], signal.SIGKILL)
            stats = await server.collect_stats(timeout_s=5.0)
            assert stats["partial"] is True
            statuses = sorted(w["status"] for w in stats["workers"])
            assert statuses == ["ok", "unavailable"]
        finally:
            await server.shutdown()

    asyncio.run(scenario())


def test_serve_client_stats_convenience() -> None:
    async def scenario():
        server = await _booted(workers=2)
        try:
            port = await server.start_tcp("127.0.0.1", 0)
            loop = asyncio.get_running_loop()

            def roundtrip():
                with ServeClient("127.0.0.1", port) as client:
                    client.query("h* s (h | s)*", "Alix", "Bob")
                    return client.stats()

            answer = await loop.run_in_executor(None, roundtrip)
            assert answer["status"] == "ok"
            merged = answer["stats"]["merged"]
            assert merged["metrics"]["counters"]["service.requests"] == 1
        finally:
            await server.shutdown()

    asyncio.run(scenario())


def test_prometheus_endpoint_serves_merged_text() -> None:
    async def scenario():
        server = await _booted(workers=2)
        try:
            port = await server.start_tcp("127.0.0.1", 0)
            mport = await server.start_metrics("127.0.0.1", 0)
            assert server.metrics_port == mport
            await _tcp_exchange(
                port,
                [{"query": "h* s (h | s)*", "source": "Alix",
                  "target": "Bob"}],
            )
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", mport
            )
            try:
                writer.write(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
                await writer.drain()
                raw = await asyncio.wait_for(reader.read(), timeout=30)
            finally:
                writer.close()
            text = raw.decode()
            head, _, body = text.partition("\r\n\r\n")
            assert " 200 OK" in head
            assert "text/plain; version=0.0.4" in head
            lines = body.splitlines()
            assert "repro_service_requests 1" in lines
            assert any(
                line.startswith("repro_service_request_seconds_bucket")
                for line in lines
            )
            assert 'le="+Inf"' in body
        finally:
            await server.shutdown()

    asyncio.run(scenario())


def test_shutdown_captures_final_stats() -> None:
    """Satellite: the drain path snapshots the pool before stopping
    the workers, so short-lived smoke runs are not blind."""

    async def scenario():
        server = await _booted(workers=2)
        try:
            port = await server.start_tcp("127.0.0.1", 0)
            await _tcp_exchange(
                port,
                [{"query": "h* s (h | s)*", "source": "Alix",
                  "target": "Bob"}],
            )
        finally:
            await server.shutdown()
        final = server.final_stats
        assert final is not None
        assert final["partial"] is False
        assert final["merged"]["service"]["requests"] == 1
        return None

    asyncio.run(scenario())


def test_disabled_obs_server_skips_final_stats() -> None:
    from repro.obs import Observability

    async def scenario():
        server = await _booted(workers=1, obs=Observability.disabled())
        try:
            await server.start_tcp("127.0.0.1", 0)
        finally:
            await server.shutdown()
        assert server.final_stats is None

    asyncio.run(scenario())
