"""Unit tests for the metrics registry: bucket math, merge, exposition.

The histogram boundary cases pin the Prometheus ``le`` convention
(observations equal to a bound land in that bound's bucket) and the
quantile interpolation; the merge tests pin the cross-worker
aggregation semantics (sum counters, max gauges, element-wise bucket
adds).  The disabled-mode tests are the no-op overhead contract: a
disabled registry hands out *shared null singletons*, so the
per-event cost is one no-op method call with no allocation.
"""

import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    histogram_quantile,
    merge_snapshots,
    render_prometheus,
)


class TestCountersAndGauges:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("hits")
        c.inc()
        c.inc(2.5)
        assert reg.counter_value("hits") == pytest.approx(3.5)

    def test_counter_is_shared_by_name(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.counter("x").inc()
        assert reg.counter_value("x") == 2.0

    def test_missing_counter_reads_zero(self):
        assert MetricsRegistry().counter_value("nope") == 0.0

    def test_gauge_set_and_inc(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(10.0)
        g.inc(-3.0)
        assert reg.snapshot()["gauges"]["depth"] == pytest.approx(7.0)

    def test_counter_thread_safety(self):
        reg = MetricsRegistry()
        c = reg.counter("contended")
        n, per = 8, 2000

        def worker():
            for _ in range(per):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter_value("contended") == n * per


class TestHistogramBuckets:
    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            Histogram("h", bounds=())

    def test_value_on_bound_lands_in_that_bucket(self):
        # Prometheus `le` semantics: bucket i counts v <= bounds[i].
        h = Histogram("h", bounds=(1.0, 2.0, 4.0))
        h.observe(1.0)
        snap = h.snapshot()
        assert snap["counts"] == [1, 0, 0, 0]

    def test_value_just_over_bound_moves_up(self):
        h = Histogram("h", bounds=(1.0, 2.0, 4.0))
        h.observe(1.0000001)
        assert h.snapshot()["counts"] == [0, 1, 0, 0]

    def test_overflow_bucket(self):
        h = Histogram("h", bounds=(1.0, 2.0))
        h.observe(99.0)
        snap = h.snapshot()
        assert snap["counts"] == [0, 0, 1]
        assert snap["max"] == 99.0

    def test_zero_lands_in_first_bucket(self):
        h = Histogram("h", bounds=(1.0, 2.0))
        h.observe(0.0)
        assert h.snapshot()["counts"] == [1, 0, 0]

    def test_sum_and_count(self):
        h = Histogram("h", bounds=(1.0, 2.0))
        for v in (0.5, 1.5, 3.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(5.0)

    def test_default_bounds_cover_latency_range(self):
        assert DEFAULT_LATENCY_BUCKETS[0] <= 0.0001
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 10.0
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(
            DEFAULT_LATENCY_BUCKETS
        )


class TestQuantiles:
    def test_empty_histogram_quantile_is_zero(self):
        h = Histogram("h", bounds=(1.0, 2.0))
        assert h.quantile(0.5) == 0.0

    def test_quantile_interpolates_within_bucket(self):
        # 10 observations all in the (1.0, 2.0] bucket: the p50 rank
        # is halfway through it, so interpolation gives ~1.5.
        h = Histogram("h", bounds=(1.0, 2.0, 4.0))
        for _ in range(10):
            h.observe(1.5)
        assert h.quantile(0.5) == pytest.approx(1.5, abs=0.11)

    def test_quantile_uses_observed_max_in_overflow(self):
        h = Histogram("h", bounds=(1.0,))
        h.observe(7.0)
        # The overflow bucket has no upper bound; the observed max
        # caps the interpolation so p99 is never infinite.
        assert h.quantile(0.99) <= 7.0

    def test_quantile_validates_q(self):
        snap = Histogram("h", bounds=(1.0,)).snapshot()
        with pytest.raises(ValueError):
            histogram_quantile(snap, 0.0)
        with pytest.raises(ValueError):
            histogram_quantile(snap, 1.5)

    def test_snapshot_annotates_p50_p95_p99(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", bounds=(1.0, 2.0))
        h.observe(0.5)
        snap = reg.snapshot()["histograms"]["lat"]
        for key in ("p50", "p95", "p99"):
            assert key in snap


class TestMerge:
    def _snap(self, requests, depth, lat_counts):
        return {
            "counters": {"requests": requests},
            "gauges": {"depth": depth},
            "histograms": {
                "lat": {
                    "buckets": [1.0, 2.0],
                    "counts": list(lat_counts),
                    "count": sum(lat_counts),
                    "sum": 1.0,
                    "max": 2.0,
                }
            },
        }

    def test_counters_sum_gauges_max_buckets_add(self):
        merged = merge_snapshots(
            [self._snap(3, 5, [1, 0, 0]), self._snap(4, 2, [0, 2, 1])]
        )
        assert merged["counters"]["requests"] == 7
        assert merged["gauges"]["depth"] == 5
        assert merged["histograms"]["lat"]["counts"] == [1, 2, 1]
        assert merged["histograms"]["lat"]["count"] == 4

    def test_merge_skips_none_entries(self):
        merged = merge_snapshots([None, self._snap(2, 1, [1, 0, 0]), None])
        assert merged["counters"]["requests"] == 2

    def test_bucket_layout_skew_keeps_first(self):
        # Version skew between workers: incompatible layouts must not
        # produce garbage element-wise adds.
        a = self._snap(1, 1, [1, 0, 0])
        b = self._snap(1, 1, [5, 0, 0])
        b["histograms"]["lat"]["buckets"] = [10.0, 20.0]
        merged = merge_snapshots([a, b])
        assert merged["histograms"]["lat"]["counts"] == [1, 0, 0]

    def test_merged_histograms_have_quantiles(self):
        merged = merge_snapshots([self._snap(1, 1, [4, 4, 2])])
        assert "p95" in merged["histograms"]["lat"]


class TestPrometheusRender:
    def test_exposition_format(self):
        reg = MetricsRegistry()
        reg.counter("service.requests").inc(3)
        reg.gauge("live.overlay_edges").set(12)
        h = reg.histogram("wal.fsync_seconds", bounds=(0.001, 0.01))
        h.observe(0.0005)
        h.observe(0.5)
        text = render_prometheus(reg.snapshot())
        assert text.endswith("\n")
        lines = text.splitlines()
        assert "repro_service_requests 3" in lines
        assert "repro_live_overlay_edges 12" in lines
        # Cumulative buckets plus the +Inf catch-all.
        assert 'repro_wal_fsync_seconds_bucket{le="0.001"} 1' in lines
        assert 'repro_wal_fsync_seconds_bucket{le="0.01"} 1' in lines
        assert 'repro_wal_fsync_seconds_bucket{le="+Inf"} 2' in lines
        assert "repro_wal_fsync_seconds_count 2" in lines
        assert any(
            line.startswith("# TYPE repro_service_requests counter")
            for line in lines
        )


class TestDisabledMode:
    def test_disabled_registry_hands_out_shared_nulls(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("a") is NULL_COUNTER
        assert reg.counter("b") is NULL_COUNTER
        assert reg.gauge("g") is NULL_GAUGE
        assert reg.histogram("h") is NULL_HISTOGRAM

    def test_null_instruments_are_inert(self):
        NULL_COUNTER.inc()
        NULL_GAUGE.set(5.0)
        NULL_HISTOGRAM.observe(1.0)
        reg = MetricsRegistry(enabled=False)
        snap = reg.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}

    def test_disabled_overhead_is_noop_scale(self):
        # The contract behind bench_obs's <=1% disabled bar: an event
        # against a null instrument is one attribute-free method call.
        # Assert it stays within a small constant factor of an empty
        # function call rather than asserting wall-clock numbers.
        import timeit

        c = MetricsRegistry(enabled=False).counter("x")

        def noop():
            pass

        base = min(
            timeit.repeat(noop, number=20000, repeat=5)
        )
        null = min(
            timeit.repeat(lambda: c.inc(), number=20000, repeat=5)
        )
        assert null < base * 10 + 0.05


class TestCollectors:
    def test_collector_partials_merge_into_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("own").inc()
        reg.register_collector(
            lambda: {
                "counters": {"pulled.hits": 4},
                "gauges": {"pulled.entries": 2},
            }
        )
        snap = reg.snapshot()
        assert snap["counters"]["own"] == 1.0
        assert snap["counters"]["pulled.hits"] == 4
        assert snap["gauges"]["pulled.entries"] == 2

    def test_failing_collector_does_not_break_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("own").inc()

        def bad():
            raise RuntimeError("cache is mid-teardown")

        reg.register_collector(bad)
        assert reg.snapshot()["counters"]["own"] == 1.0
