"""Span-tree tests: trace plumbing and the shapes the executor emits.

The shape tests pin the tentpole contract: one request decomposes
into ``parse -> compile -> annotate -> trim -> enumerate`` spans with
cache-hit/miss tags, a warm request collapses to the post-hoc cached
``annotate`` plus ``enumerate``, and ``semantics="any"`` has no trim
stage (the witness engine runs on the untrimmed product).
"""

import pytest

from repro.graph.builder import GraphBuilder
from repro.obs import Observability, Trace
from repro.obs import trace as obs_trace
from repro.service import QueryService
from repro.service.requests import QueryRequest


def _demo_graph():
    builder = GraphBuilder()
    for src, tgt, labels in [
        ("Alix", "Dan", "hs"),
        ("Dan", "Eve", "h"),
        ("Eve", "Bob", "s"),
        ("Alix", "Eve", "t"),
        ("Dan", "Bob", "t"),
    ]:
        for label in labels:
            builder.add_edge(src, tgt, label)
    return builder.build()


def _span_names(spans):
    return [span["name"] for span in spans]


def _span_by_name(spans, name):
    matches = [span for span in spans if span["name"] == name]
    assert len(matches) == 1, f"expected one {name!r} span, got {matches}"
    return matches[0]


class TestTracePrimitives:
    def test_span_nesting_builds_a_tree(self):
        trace = Trace()
        token = obs_trace.activate(trace)
        try:
            with obs_trace.span("outer", kind="test"):
                with obs_trace.span("inner"):
                    pass
                with obs_trace.span("inner2"):
                    pass
        finally:
            obs_trace.deactivate(token)
        tree = trace.to_dict()["spans"]
        assert _span_names(tree) == ["outer"]
        assert tree[0]["tags"] == {"kind": "test"}
        assert _span_names(tree[0]["children"]) == ["inner", "inner2"]
        assert tree[0]["duration_ms"] >= 0.0

    def test_add_span_attaches_post_hoc(self):
        trace = Trace()
        token = obs_trace.activate(trace)
        try:
            obs_trace.add_span("cached-thing", 0.005, cached=True)
        finally:
            obs_trace.deactivate(token)
        (span,) = trace.to_dict()["spans"]
        assert span["name"] == "cached-thing"
        assert span["tags"] == {"cached": True}
        assert span["duration_ms"] == pytest.approx(5.0)

    def test_timings_sums_top_level_by_name(self):
        trace = Trace()
        trace.add_span("annotate", 0.5)
        trace.add_span("annotate", 0.25)
        trace.add_span("trim", 0.125)
        assert trace.timings() == {"annotate": 0.75, "trim": 0.125}

    def test_no_active_trace_is_the_shared_null_path(self):
        assert obs_trace.current_trace() is None
        # Both entry points must be allocation-free no-ops: span()
        # returns the one shared null context manager.
        assert obs_trace.span("a") is obs_trace.span("b")
        with obs_trace.span("ignored"):
            pass
        obs_trace.add_span("ignored", 1.0)
        assert obs_trace.current_trace() is None

    def test_deactivate_restores_outer_state(self):
        outer = Trace()
        token_outer = obs_trace.activate(outer)
        inner = Trace()
        token_inner = obs_trace.activate(inner)
        assert obs_trace.current_trace() is inner
        obs_trace.deactivate(token_inner)
        assert obs_trace.current_trace() is outer
        obs_trace.deactivate(token_outer)
        assert obs_trace.current_trace() is None


@pytest.fixture()
def service():
    svc = QueryService(max_workers=1)
    svc.register_graph("default", _demo_graph())
    yield svc
    svc.close()


def _run(service, **fields):
    payload = {
        "query": "h* s (h | s)*",
        "source": "Alix",
        "target": "Bob",
        **fields,
    }
    response = service.execute(QueryRequest.from_dict(payload))
    assert response.status == "ok", response.to_dict()
    return response


class TestExecutorSpanShapes:
    @pytest.mark.parametrize(
        "mode", ["iterative", "recursive", "memoryless"]
    )
    def test_cold_request_has_all_five_phases(self, service, mode):
        _run(service, mode=mode)
        entry = service.obs.slowlog.entries()[-1]
        spans = entry["spans"]
        assert _span_names(spans) == [
            "parse",
            "compile",
            "annotate",
            "trim",
            "enumerate",
        ]
        assert _span_by_name(spans, "parse")["tags"] == {
            "construction": "thompson"
        }
        annotate = _span_by_name(spans, "annotate")
        assert annotate["tags"]["cached"] is False

    @pytest.mark.parametrize(
        "mode", ["iterative", "recursive", "memoryless"]
    )
    def test_warm_request_collapses_to_cached_annotate(self, service, mode):
        _run(service, mode=mode)
        _run(service, mode=mode)
        entry = service.obs.slowlog.entries()[-1]
        spans = entry["spans"]
        assert _span_names(spans) == ["annotate", "enumerate"]
        assert _span_by_name(spans, "annotate")["tags"] == {"cached": True}

    def test_any_walk_has_no_trim_span(self, service):
        _run(service, semantics="any")
        spans = service.obs.slowlog.entries()[-1]["spans"]
        assert _span_names(spans) == ["parse", "compile", "annotate",
                                      "enumerate"]
        annotate = _span_by_name(spans, "annotate")
        assert annotate["tags"] == {"semantics": "any", "cached": False}

    def test_restricted_semantics_keep_the_trim_span(self, service):
        _run(service, semantics="trails")
        spans = service.obs.slowlog.entries()[-1]["spans"]
        assert _span_names(spans) == [
            "parse",
            "compile",
            "annotate",
            "trim",
            "enumerate",
        ]


class TestSlowLogEntries:
    def test_entry_shape(self, service):
        _run(service)
        (entry,) = service.obs.slowlog.entries()
        assert entry["kind"] == "query"
        assert entry["status"] == "ok"
        assert entry["total_ms"] >= 0.0
        assert entry["request"]["query"] == "h* s (h | s)*"
        assert entry["request"]["source"] == "Alix"
        assert entry["request"]["target"] == "Bob"
        assert entry["explain"]["lam"] == 3
        assert entry["explain"]["walks"] >= 1
        assert "total" in entry["explain"]["timings"]

    def test_threshold_filters_fast_requests(self):
        svc = QueryService(max_workers=1, slow_ms=60_000.0)
        svc.register_graph("default", _demo_graph())
        try:
            _run(svc)
            assert svc.obs.slowlog.entries() == []
        finally:
            svc.close()

    def test_ring_buffer_drops_oldest(self):
        svc = QueryService(max_workers=1, slowlog_capacity=2)
        svc.register_graph("default", _demo_graph())
        try:
            for i in range(3):
                _run(svc, id=f"req-{i}")
            kept = [e["id"] for e in svc.obs.slowlog.entries()]
            assert kept == ["req-1", "req-2"]
        finally:
            svc.close()


class TestDisabledObservability:
    def test_disabled_service_records_nothing(self):
        svc = QueryService(max_workers=1, obs=Observability.disabled())
        svc.register_graph("default", _demo_graph())
        try:
            response = _run(svc)
            assert svc.obs.slowlog.entries() == []
            assert svc.obs.registry.snapshot()["counters"] == {}
            assert getattr(response, "trace", None) is None
            # Legacy stats() keys still answer (all zero counters).
            assert svc.stats()["requests"] == 0
        finally:
            svc.close()

    def test_no_trace_leaks_out_of_a_request(self, service):
        _run(service)
        assert obs_trace.current_trace() is None
