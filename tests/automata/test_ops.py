"""Unit tests for automaton operations (ε-removal, reverse, trim,
product, unambiguity)."""

import pytest
from hypothesis import given, settings

from repro.automata import (
    EPSILON,
    NFA,
    is_unambiguous,
    product,
    remove_epsilon,
    reverse,
    thompson_nfa,
    trim,
)
from repro.automata.regex_parser import parse_rpq

from tests.conftest import small_nfas

_WORDS = [
    [],
    ["a"],
    ["b"],
    ["a", "a"],
    ["a", "b"],
    ["b", "a"],
    ["b", "b"],
    ["a", "b", "a"],
    ["a", "a", "b"],
    ["c"],
    ["a", "c", "b"],
]


class TestRemoveEpsilon:
    def test_thompson_language_preserved(self):
        nfa = thompson_nfa(parse_rpq("a* b | c"))
        elim = remove_epsilon(nfa)
        assert not elim.has_epsilon
        for word in _WORDS:
            assert nfa.accepts(word) == elim.accepts(word), word

    def test_plain_nfa_unchanged_language(self):
        nfa = NFA(2)
        nfa.add_transition(0, "a", 1)
        nfa.set_initial(0)
        nfa.set_final(1)
        elim = remove_epsilon(nfa)
        assert elim.accepts(["a"]) and not elim.accepts([])

    @given(small_nfas(allow_epsilon=True))
    @settings(max_examples=50)
    def test_random_language_preserved(self, nfa):
        elim = remove_epsilon(nfa)
        assert not elim.has_epsilon
        for word in _WORDS:
            assert nfa.accepts(word) == elim.accepts(word), word


class TestReverse:
    def test_reverses_language(self):
        nfa = thompson_nfa(parse_rpq("a b c"))
        rev = reverse(nfa)
        assert rev.accepts(["c", "b", "a"])
        assert not rev.accepts(["a", "b", "c"])

    @given(small_nfas())
    @settings(max_examples=50)
    def test_double_reverse_language(self, nfa):
        double = reverse(reverse(nfa))
        for word in _WORDS:
            assert nfa.accepts(word) == double.accepts(word), word


class TestTrim:
    def test_removes_useless_states(self):
        nfa = NFA(4)
        nfa.add_transition(0, "a", 1)
        nfa.add_transition(2, "a", 1)  # 2 unreachable.
        nfa.add_transition(0, "a", 3)  # 3 not co-reachable.
        nfa.set_initial(0)
        nfa.set_final(1)
        trimmed, mapping = trim(nfa)
        assert trimmed.n_states == 2
        assert 2 not in mapping and 3 not in mapping

    def test_empty_language_trims_to_nothing(self):
        nfa = NFA(2)
        nfa.set_initial(0)
        nfa.set_final(1)
        trimmed, _ = trim(nfa)
        assert trimmed.n_states == 0

    @given(small_nfas())
    @settings(max_examples=50)
    def test_language_preserved(self, nfa):
        trimmed, _ = trim(nfa)
        for word in _WORDS:
            accepted = nfa.accepts(word)
            if trimmed.n_states == 0:
                assert not accepted or word is None or not accepted
            else:
                assert accepted == trimmed.accepts(word), word


class TestProduct:
    def test_intersection(self):
        left = thompson_nfa(parse_rpq("a* b"))
        right = thompson_nfa(parse_rpq("a b | b"))
        prod = product(remove_epsilon(left), remove_epsilon(right))
        assert prod.accepts(["a", "b"])
        assert prod.accepts(["b"])
        assert not prod.accepts(["a", "a", "b"])  # Only in the left.

    def test_requires_eps_free(self):
        eps_nfa = thompson_nfa(parse_rpq("a b"))  # Concat adds ε-edges.
        assert eps_nfa.has_epsilon
        plain = remove_epsilon(eps_nfa)
        with pytest.raises(ValueError):
            product(eps_nfa, plain)

    @given(small_nfas(), small_nfas())
    @settings(max_examples=30)
    def test_product_is_intersection(self, left, right):
        prod = product(left, right)
        for word in _WORDS:
            expected = left.accepts(word) and right.accepts(word)
            assert prod.accepts(word) == expected, word


class TestUnambiguity:
    def test_deterministic_is_unambiguous(self):
        nfa = NFA(2)
        nfa.add_transition(0, "a", 1)
        nfa.add_transition(1, "b", 1)
        nfa.set_initial(0)
        nfa.set_final(1)
        assert is_unambiguous(nfa)

    def test_example9_automaton_is_unambiguous(self):
        """Figure 3's automaton: each accepted word has one run."""
        from repro.workloads.fraud import example9_automaton

        assert is_unambiguous(example9_automaton())

    def test_classic_ambiguous(self):
        # (a|a): two runs for "a".
        nfa = NFA(3)
        nfa.add_transition(0, "a", 1)
        nfa.add_transition(0, "a", 2)
        nfa.set_initial(0)
        nfa.set_final(1, 2)
        assert not is_unambiguous(nfa)

    def test_two_initial_states_ambiguous(self):
        nfa = NFA(2)
        nfa.add_transition(0, "a", 0)
        nfa.add_transition(1, "a", 1)
        nfa.set_initial(0, 1)
        nfa.set_final(0, 1)
        assert not is_unambiguous(nfa)

    def test_nondeterministic_but_unambiguous(self):
        # a*b as the natural NFA: nondeterministic? state 0 on b can go
        # to... build: 0 -a-> 0, 0 -b-> 1; deterministic actually.  Use
        # a two-way split that never accepts twice: a(b|c).
        nfa = NFA(4)
        nfa.add_transition(0, "a", 1)
        nfa.add_transition(0, "a", 2)
        nfa.add_transition(1, "b", 3)
        nfa.add_transition(2, "c", 3)
        nfa.set_initial(0)
        nfa.set_final(3)
        # Nondeterministic on 'a', but any accepted word ("ab" or "ac")
        # has exactly one accepting run... except the split happens
        # before reading b/c, so runs differ: "ab" has runs 0-1-3 only
        # (0-2 dies). Unambiguous.
        assert not len(nfa.delta(0, "a")) == 1
        assert is_unambiguous(nfa)

    def test_empty_language_unambiguous(self):
        nfa = NFA(1)
        nfa.set_initial(0)
        assert is_unambiguous(nfa)

    def test_epsilon_handled(self):
        nfa = NFA(3)
        nfa.add_transition(0, EPSILON, 1)
        nfa.add_transition(1, "a", 2)
        nfa.set_initial(0)
        nfa.set_final(2)
        assert is_unambiguous(nfa)
