"""Unit and property tests for equivalence / inclusion checking."""

import pytest
from hypothesis import given, settings

from repro.automata import (
    NFA,
    counterexample,
    equivalent,
    is_subset,
    minimize,
    regex_to_nfa,
    subset_counterexample,
)
from repro.exceptions import AutomatonError

from tests.conftest import regex_asts, small_nfas


def _nfa_of(expr: str) -> NFA:
    return regex_to_nfa(expr)


class TestEquivalence:
    def test_identities(self):
        for left, right in [
            ("a | b", "b | a"),
            ("(a b) c", "a (b c)"),
            ("a**", "a*"),
            ("(a | b)*", "(a* b*)*"),
            ("a+", "a a*"),
            ("a?", "a | <eps>"),
            ("a{0,2}", "<eps> | a | a a"),
        ]:
            assert equivalent(_nfa_of(left), _nfa_of(right)), (left, right)

    def test_non_identities_with_counterexample(self):
        # "b" is in a*b but not in a+b — and it is the shortest witness.
        word = counterexample(_nfa_of("a* b"), _nfa_of("a+ b"))
        assert word == ("b",)

    def test_counterexample_is_shortest(self):
        word = counterexample(_nfa_of("a a a"), _nfa_of("a a"))
        assert word == ("a", "a")  # Accepted by right only, length 2.

    def test_counterexample_none_when_equal(self):
        assert counterexample(_nfa_of("a*"), _nfa_of("a* a*")) is None

    def test_epsilon_handling(self):
        thompson = regex_to_nfa("a b c")  # ε-heavy Thompson NFA.
        assert thompson.has_epsilon
        flat = NFA(4)
        for i, label in enumerate("abc"):
            flat.add_transition(i, label, i + 1)
        flat.set_initial(0)
        flat.set_final(3)
        assert equivalent(thompson, flat)

    def test_wildcard_vs_concrete(self):
        # "." accepts labels outside {a}; plain "a" does not.
        assert not equivalent(_nfa_of("."), _nfa_of("a"))
        word = counterexample(_nfa_of("."), _nfa_of("a"))
        assert word is not None and len(word) == 1

    def test_pair_cap(self):
        with pytest.raises(AutomatonError, match="exceeded"):
            equivalent(
                _nfa_of("(a | b)* a (a | b) (a | b) (a | b)"),
                _nfa_of("(a | b)* b (a | b) (a | b) (a | b)"),
                max_pairs=4,
            )


class TestInclusion:
    def test_basic_subsets(self):
        assert is_subset(_nfa_of("a a"), _nfa_of("a*"))
        assert is_subset(_nfa_of("a | b"), _nfa_of("(a | b)*"))
        assert not is_subset(_nfa_of("a*"), _nfa_of("a a"))

    def test_subset_counterexample(self):
        word = subset_counterexample(_nfa_of("a*"), _nfa_of("a a"))
        assert word in ((), ("a",))  # ε or "a": both in a* \ aa.

    def test_inclusion_not_symmetric(self):
        left, right = _nfa_of("a"), _nfa_of("a | b")
        assert is_subset(left, right)
        assert not is_subset(right, left)

    def test_empty_language_subset_of_all(self):
        empty = NFA(1)
        empty.set_initial(0)
        assert is_subset(empty, _nfa_of("a"))
        assert not is_subset(_nfa_of("a"), empty)


class TestProperties:
    @given(regex_asts(), regex_asts())
    @settings(max_examples=60, deadline=None)
    def test_equivalence_matches_language_keys(self, left_ast, right_ast):
        from repro.automata import language_key

        left, right = regex_to_nfa(left_ast), regex_to_nfa(right_ast)
        assert equivalent(left, right) == (
            language_key(left) == language_key(right)
        )

    @given(regex_asts(), regex_asts())
    @settings(max_examples=60, deadline=None)
    def test_counterexample_is_valid(self, left_ast, right_ast):
        left, right = regex_to_nfa(left_ast), regex_to_nfa(right_ast)
        word = counterexample(left, right)
        if word is not None:
            assert left.accepts(word) != right.accepts(word)

    @given(small_nfas())
    @settings(max_examples=60, deadline=None)
    def test_reflexive(self, nfa):
        assert equivalent(nfa, nfa)
        assert is_subset(nfa, nfa)

    @given(small_nfas(), small_nfas())
    @settings(max_examples=60, deadline=None)
    def test_mutual_inclusion_is_equivalence(self, a, b):
        both = is_subset(a, b) and is_subset(b, a)
        assert both == equivalent(a, b)

    @given(regex_asts())
    @settings(max_examples=40, deadline=None)
    def test_minimize_equivalent_to_original(self, ast):
        nfa = regex_to_nfa(ast)
        assert equivalent(nfa, minimize(nfa))
