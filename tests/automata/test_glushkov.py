"""Unit tests for the Glushkov (position) construction."""

from repro.automata import glushkov_nfa
from repro.automata.regex_ast import desugar
from repro.automata.regex_parser import parse_rpq


class TestLanguages:
    def test_label(self):
        nfa = glushkov_nfa(parse_rpq("a"))
        assert nfa.accepts(["a"])
        assert not nfa.accepts([])

    def test_epsilon(self):
        nfa = glushkov_nfa(parse_rpq("ε"))
        assert nfa.accepts([])
        assert not nfa.accepts(["a"])

    def test_union_star(self):
        nfa = glushkov_nfa(parse_rpq("(a | b)* c"))
        assert nfa.accepts(["c"])
        assert nfa.accepts(["a", "b", "c"])
        assert not nfa.accepts(["c", "a"])

    def test_example9(self):
        nfa = glushkov_nfa(parse_rpq("h* s (h | s)*"))
        assert nfa.accepts(["s"])
        assert nfa.accepts(["h", "h", "s"])
        assert nfa.accepts(["s", "h", "s"])
        assert not nfa.accepts(["h", "h", "h"])

    def test_nullable_expression(self):
        nfa = glushkov_nfa(parse_rpq("a* b*"))
        assert nfa.accepts([])
        assert nfa.accepts(["a", "b"])
        assert not nfa.accepts(["b", "a"])

    def test_sugar(self):
        nfa = glushkov_nfa(parse_rpq("a{2,3}"))
        assert not nfa.accepts(["a"])
        assert nfa.accepts(["a", "a"])
        assert nfa.accepts(["a", "a", "a"])
        assert not nfa.accepts(["a"] * 4)

    def test_wildcard(self):
        nfa = glushkov_nfa(parse_rpq(". ."))
        assert nfa.accepts(["x", "y"])
        assert not nfa.accepts(["x"])


class TestShape:
    def test_epsilon_free(self):
        for expression in ["a* b", "(a | b)*", "a? b{0,2}", "ε"]:
            assert not glushkov_nfa(parse_rpq(expression)).has_epsilon

    def test_positions_plus_one_states(self):
        """|Q| = number of label occurrences + 1."""
        ast = desugar(parse_rpq("a b | a*"))
        nfa = glushkov_nfa(ast)
        positions = _count_atoms(ast)
        assert nfa.n_states == positions + 1

    def test_single_initial(self):
        nfa = glushkov_nfa(parse_rpq("(a | b) c"))
        assert len(nfa.initial) == 1

    def test_quadratic_transitions_possible(self):
        """(a|a|...|a)* has Θ(k²) follow transitions."""
        k = 6
        expression = "(" + " | ".join(["a"] * k) + ")*"
        nfa = glushkov_nfa(parse_rpq(expression))
        # Each of the k positions follows each of the k positions,
        # plus k initial transitions.
        assert nfa.transition_count == k * k + k


def _count_atoms(node) -> int:
    from repro.automata.regex_ast import (
        AnyAtom,
        Concat,
        EpsilonAtom,
        Label,
        Star,
        Union,
    )

    if isinstance(node, (Label, AnyAtom)):
        return 1
    if isinstance(node, EpsilonAtom):
        return 0
    if isinstance(node, (Concat, Union)):
        return sum(_count_atoms(p) for p in node.parts)
    if isinstance(node, Star):
        return _count_atoms(node.child)
    raise AssertionError(node)
