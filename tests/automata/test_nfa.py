"""Unit tests for the NFA core."""

import pytest

from repro.automata import ANY, EPSILON, NFA
from repro.exceptions import AutomatonError
from repro.workloads.fraud import example9_automaton


@pytest.fixture
def ab_star_b():
    """Accepts (a|b)* b — nondeterministic two-state automaton."""
    nfa = NFA(2)
    nfa.add_transition(0, "a", 0)
    nfa.add_transition(0, "b", 0)
    nfa.add_transition(0, "b", 1)
    nfa.set_initial(0)
    nfa.set_final(1)
    return nfa


class TestConstruction:
    def test_add_state(self):
        nfa = NFA()
        assert nfa.add_state() == 0
        assert nfa.add_state() == 1
        assert nfa.n_states == 2

    def test_add_states_bulk(self):
        nfa = NFA()
        assert nfa.add_states(3) == [0, 1, 2]

    def test_transitions_deduped(self):
        nfa = NFA(2)
        nfa.add_transition(0, "a", 1)
        nfa.add_transition(0, "a", 1)
        assert nfa.delta(0, "a") == (1,)
        assert nfa.transition_count == 1

    def test_bad_state_rejected(self):
        nfa = NFA(1)
        with pytest.raises(AutomatonError):
            nfa.add_transition(0, "a", 5)
        with pytest.raises(AutomatonError):
            nfa.set_initial(9)

    def test_bad_label_rejected(self):
        nfa = NFA(1)
        with pytest.raises(AutomatonError):
            nfa.add_transition(0, "", 0)
        with pytest.raises(AutomatonError):
            nfa.add_transition(0, 42, 0)

    def test_size_formula(self, ab_star_b):
        # |Σ|=2, |Q|=2, |Δ|=3.
        assert ab_star_b.size() == 2 + 2 + 3


class TestAcceptance:
    def test_basic_words(self, ab_star_b):
        assert ab_star_b.accepts(["b"])
        assert ab_star_b.accepts(["a", "b"])
        assert ab_star_b.accepts(["a", "a", "b", "b"])
        assert not ab_star_b.accepts(["a"])
        assert not ab_star_b.accepts([])
        assert not ab_star_b.accepts(["b", "a"])

    def test_unknown_symbol(self, ab_star_b):
        assert not ab_star_b.accepts(["z"])

    def test_example9_language(self):
        nfa = example9_automaton()
        assert nfa.accepts(["s"])
        assert nfa.accepts(["h", "h", "s"])
        assert nfa.accepts(["h", "s", "h"])
        assert nfa.accepts(["s", "h", "s"])
        assert not nfa.accepts(["h"])
        assert not nfa.accepts(["h", "h", "h"])
        assert not nfa.accepts([])

    def test_wildcard(self):
        nfa = NFA(2)
        nfa.add_transition(0, ANY, 1)
        nfa.set_initial(0)
        nfa.set_final(1)
        assert nfa.accepts(["anything"])
        assert nfa.accepts(["x"])
        assert not nfa.accepts([])
        assert not nfa.accepts(["x", "y"])
        assert nfa.uses_wildcard


class TestEpsilon:
    def test_closure(self):
        nfa = NFA(4)
        nfa.add_transition(0, EPSILON, 1)
        nfa.add_transition(1, EPSILON, 2)
        nfa.add_transition(2, "a", 3)
        assert nfa.eps_closure([0]) == frozenset({0, 1, 2})
        assert nfa.eps_closure([3]) == frozenset({3})

    def test_closure_with_cycle(self):
        nfa = NFA(2)
        nfa.add_transition(0, EPSILON, 1)
        nfa.add_transition(1, EPSILON, 0)
        assert nfa.eps_closure([0]) == frozenset({0, 1})

    def test_accepts_through_epsilon(self):
        nfa = NFA(3)
        nfa.add_transition(0, EPSILON, 1)
        nfa.add_transition(1, "a", 2)
        nfa.set_initial(0)
        nfa.set_final(2)
        assert nfa.accepts(["a"])
        assert not nfa.accepts([])

    def test_epsilon_acceptance_of_empty_word(self):
        nfa = NFA(2)
        nfa.add_transition(0, EPSILON, 1)
        nfa.set_initial(0)
        nfa.set_final(1)
        assert nfa.accepts([])
        assert nfa.has_epsilon


class TestMatchesLabelSets:
    def test_paper_matching_semantics(self):
        """Walk matches iff some per-edge label choice is accepted."""
        nfa = example9_automaton()
        # w4 = e2 e4 e8: {h,s}·{h}·{h,s} contains shh (accepted).
        assert nfa.matches_label_sets([("h", "s"), ("h",), ("h", "s")])
        # e1 e7: {h}·{h} = hh only, not accepted.
        assert not nfa.matches_label_sets([("h",), ("h",)])

    def test_empty_walk(self):
        nfa = example9_automaton()
        assert not nfa.matches_label_sets([])  # ε not in L.


class TestShortestAcceptedLength:
    def test_simple(self, ab_star_b):
        assert ab_star_b.shortest_accepted_length() == 1

    def test_empty_language(self):
        nfa = NFA(2)
        nfa.add_transition(0, "a", 0)
        nfa.set_initial(0)
        nfa.set_final(1)  # 1 unreachable.
        assert nfa.shortest_accepted_length() is None
        assert nfa.is_empty_language()

    def test_epsilon_word(self):
        nfa = NFA(1)
        nfa.set_initial(0)
        nfa.set_final(0)
        assert nfa.shortest_accepted_length() == 0

    def test_epsilon_transitions_are_free(self):
        nfa = NFA(4)
        nfa.add_transition(0, EPSILON, 1)
        nfa.add_transition(1, "a", 2)
        nfa.add_transition(2, EPSILON, 3)
        nfa.set_initial(0)
        nfa.set_final(3)
        assert nfa.shortest_accepted_length() == 1

    def test_example9(self):
        assert example9_automaton().shortest_accepted_length() == 1


class TestMisc:
    def test_copy_is_deep(self, ab_star_b):
        clone = ab_star_b.copy()
        clone.add_transition(1, "a", 1)
        assert clone.transition_count == ab_star_b.transition_count + 1
        assert clone.accepts(["b", "a"])
        assert not ab_star_b.accepts(["b", "a"])

    def test_alphabet(self, ab_star_b):
        assert ab_star_b.alphabet() == {"a", "b"}

    def test_transitions_iteration(self, ab_star_b):
        triples = set(ab_star_b.transitions())
        assert (0, "b", 1) in triples
        assert len(triples) == 3

    def test_validate_ok(self, ab_star_b):
        ab_star_b.validate()

    def test_to_dot_contains_states(self, ab_star_b):
        dot = ab_star_b.to_dot()
        assert "digraph" in dot
        assert "doublecircle" in dot

    def test_repr(self, ab_star_b):
        assert "|Q|=2" in repr(ab_star_b)
