"""Unit tests for the Thompson construction (Theorem 19)."""

from hypothesis import given, settings

from repro.automata import EPSILON, thompson_nfa
from repro.automata.regex_ast import ast_size, desugar
from repro.automata.regex_parser import parse_rpq

from tests.conftest import regex_asts

_WORDS = [
    [],
    ["a"],
    ["b"],
    ["c"],
    ["a", "a"],
    ["a", "b"],
    ["b", "a"],
    ["a", "b", "c"],
    ["a", "a", "a"],
    ["c", "c"],
]


class TestLanguages:
    def test_label(self):
        nfa = thompson_nfa(parse_rpq("a"))
        assert nfa.accepts(["a"])
        assert not nfa.accepts([])
        assert not nfa.accepts(["a", "a"])

    def test_epsilon(self):
        nfa = thompson_nfa(parse_rpq("ε"))
        assert nfa.accepts([])
        assert not nfa.accepts(["a"])

    def test_concat(self):
        nfa = thompson_nfa(parse_rpq("a b"))
        assert nfa.accepts(["a", "b"])
        assert not nfa.accepts(["a"])
        assert not nfa.accepts(["b", "a"])

    def test_union(self):
        nfa = thompson_nfa(parse_rpq("a | b"))
        assert nfa.accepts(["a"])
        assert nfa.accepts(["b"])
        assert not nfa.accepts(["a", "b"])

    def test_star(self):
        nfa = thompson_nfa(parse_rpq("a*"))
        assert nfa.accepts([])
        assert nfa.accepts(["a"])
        assert nfa.accepts(["a"] * 5)
        assert not nfa.accepts(["b"])

    def test_plus(self):
        nfa = thompson_nfa(parse_rpq("a+"))
        assert not nfa.accepts([])
        assert nfa.accepts(["a"])
        assert nfa.accepts(["a", "a"])

    def test_optional(self):
        nfa = thompson_nfa(parse_rpq("a?"))
        assert nfa.accepts([])
        assert nfa.accepts(["a"])
        assert not nfa.accepts(["a", "a"])

    def test_example9(self):
        nfa = thompson_nfa(parse_rpq("h* s (h | s)*"))
        assert nfa.accepts(["s"])
        assert nfa.accepts(["h", "h", "s"])
        assert nfa.accepts(["h", "s", "h"])
        assert not nfa.accepts(["h", "h"])

    def test_wildcard(self):
        nfa = thompson_nfa(parse_rpq(". a"))
        assert nfa.accepts(["z", "a"])
        assert nfa.accepts(["a", "a"])
        assert not nfa.accepts(["a"])


class TestShape:
    def test_single_initial_and_final(self):
        nfa = thompson_nfa(parse_rpq("(a | b)* c{2,4}"))
        assert len(nfa.initial) == 1
        assert len(nfa.final) == 1

    def test_linear_size(self):
        """O(|R|) states and transitions (Theorem 19)."""
        for expression in ["a", "a b c d", "(a | b)* c", "a+ b? (c | a)*"]:
            ast = desugar(parse_rpq(expression))
            nfa = thompson_nfa(ast)
            size = ast_size(ast)
            assert nfa.n_states <= 2 * size + 2
            assert nfa.transition_count <= 4 * size + 4

    def test_transitions_are_atomic(self):
        """Every non-ε transition corresponds to one atom occurrence."""
        nfa = thompson_nfa(parse_rpq("a a | a"))
        concrete = [
            (q, l, p) for q, l, p in nfa.transitions() if l is not EPSILON
        ]
        assert len(concrete) == 3


@given(regex_asts())
@settings(max_examples=60)
def test_acceptance_matches_glushkov(ast):
    """Thompson and Glushkov must define the same language."""
    from repro.automata import glushkov_nfa

    thompson = thompson_nfa(ast)
    glushkov = glushkov_nfa(ast)
    for word in _WORDS:
        assert thompson.accepts(word) == glushkov.accepts(word), (ast, word)
