"""Unit tests for determinism testing and subset construction."""

import pytest
from hypothesis import given, settings

from repro.automata import (
    ANY,
    EPSILON,
    NFA,
    determinize,
    is_deterministic,
    thompson_nfa,
)
from repro.automata.regex_parser import parse_rpq
from repro.exceptions import AutomatonError

from tests.conftest import small_nfas

_WORDS = [
    [],
    ["a"],
    ["b"],
    ["a", "b"],
    ["b", "a"],
    ["a", "a", "b"],
    ["c", "a"],
]


class TestIsDeterministic:
    def test_deterministic(self):
        nfa = NFA(2)
        nfa.add_transition(0, "a", 1)
        nfa.add_transition(1, "b", 1)
        nfa.set_initial(0)
        nfa.set_final(1)
        assert is_deterministic(nfa)

    def test_multiple_targets(self):
        nfa = NFA(2)
        nfa.add_transition(0, "a", 0)
        nfa.add_transition(0, "a", 1)
        nfa.set_initial(0)
        assert not is_deterministic(nfa)

    def test_multiple_initial(self):
        nfa = NFA(2)
        nfa.set_initial(0, 1)
        assert not is_deterministic(nfa)

    def test_epsilon_is_nondeterministic(self):
        nfa = NFA(2)
        nfa.add_transition(0, EPSILON, 1)
        nfa.set_initial(0)
        assert not is_deterministic(nfa)

    def test_lone_wildcard_is_deterministic(self):
        nfa = NFA(2)
        nfa.add_transition(0, ANY, 1)
        nfa.set_initial(0)
        assert is_deterministic(nfa)

    def test_wildcard_with_overlap_is_not(self):
        nfa = NFA(2)
        nfa.add_transition(0, ANY, 1)
        nfa.add_transition(0, "a", 0)
        nfa.set_initial(0)
        assert not is_deterministic(nfa)

    def test_example9_automaton_is_deterministic(self):
        from repro.workloads.fraud import example9_automaton

        assert is_deterministic(example9_automaton())


class TestDeterminize:
    def test_result_is_deterministic(self):
        nfa = thompson_nfa(parse_rpq("(a | b)* a b"))
        dfa = determinize(nfa)
        assert is_deterministic(dfa)

    def test_language_preserved(self):
        nfa = thompson_nfa(parse_rpq("(a | b)* a b"))
        dfa = determinize(nfa)
        for word in _WORDS:
            assert nfa.accepts(word) == dfa.accepts(word), word

    def test_empty_language(self):
        nfa = NFA(1)
        nfa.set_initial(0)
        dfa = determinize(nfa)
        assert dfa.is_empty_language()

    def test_wildcard_rejected(self):
        nfa = NFA(2)
        nfa.add_transition(0, ANY, 1)
        nfa.set_initial(0)
        nfa.set_final(1)
        with pytest.raises(AutomatonError):
            determinize(nfa)

    def test_state_cap(self):
        nfa = thompson_nfa(parse_rpq("(a | b)* a (a | b) (a | b)"))
        with pytest.raises(AutomatonError):
            determinize(nfa, max_states=2)

    @given(small_nfas(allow_epsilon=True))
    @settings(max_examples=40)
    def test_random_language_preserved(self, nfa):
        dfa = determinize(nfa)
        assert is_deterministic(dfa)
        for word in _WORDS:
            assert nfa.accepts(word) == dfa.accepts(word), word
