"""Unit tests for the RPQ expression parser."""

import pytest

from repro.automata.regex_ast import (
    AnyAtom,
    Concat,
    EpsilonAtom,
    Label,
    Optional,
    Plus,
    Repeat,
    Star,
    Union,
)
from repro.automata.regex_parser import parse_rpq
from repro.exceptions import RegexSyntaxError


class TestAtoms:
    def test_single_label(self):
        assert parse_rpq("knows") == Label("knows")

    def test_label_with_dash_and_digits(self):
        assert parse_rpq("type-2_x") == Label("type-2_x")

    def test_quoted_label(self):
        assert parse_rpq("'high value'") == Label("high value")
        assert parse_rpq('"weird|chars*"') == Label("weird|chars*")

    def test_quoted_escapes(self):
        assert parse_rpq(r"'it\'s'") == Label("it's")

    def test_wildcard(self):
        assert parse_rpq(".") == AnyAtom()

    def test_epsilon(self):
        assert parse_rpq("ε") == EpsilonAtom()
        assert parse_rpq("<eps>") == EpsilonAtom()

    def test_parenthesized(self):
        assert parse_rpq("( a )") == Label("a")


class TestOperators:
    def test_concat(self):
        assert parse_rpq("a b") == Concat((Label("a"), Label("b")))

    def test_concat_many(self):
        ast = parse_rpq("a b c")
        assert ast == Concat((Label("a"), Label("b"), Label("c")))

    def test_union(self):
        assert parse_rpq("a | b") == Union((Label("a"), Label("b")))

    def test_union_binds_weaker_than_concat(self):
        ast = parse_rpq("a b | c")
        assert ast == Union((Concat((Label("a"), Label("b"))), Label("c")))

    def test_star_plus_optional(self):
        assert parse_rpq("a*") == Star(Label("a"))
        assert parse_rpq("a+") == Plus(Label("a"))
        assert parse_rpq("a?") == Optional(Label("a"))

    def test_postfix_stacking(self):
        assert parse_rpq("a*?") == Optional(Star(Label("a")))

    def test_postfix_binds_tightest(self):
        assert parse_rpq("a b*") == Concat((Label("a"), Star(Label("b"))))
        assert parse_rpq("(a b)*") == Star(Concat((Label("a"), Label("b"))))


class TestRepeat:
    def test_exact(self):
        assert parse_rpq("a{3}") == Repeat(Label("a"), 3, 3)

    def test_range(self):
        assert parse_rpq("a{2,5}") == Repeat(Label("a"), 2, 5)

    def test_unbounded(self):
        assert parse_rpq("a{2,}") == Repeat(Label("a"), 2, None)

    def test_zero_lower(self):
        assert parse_rpq("a{0,1}") == Repeat(Label("a"), 0, 1)

    def test_bounds_out_of_order(self):
        with pytest.raises(RegexSyntaxError):
            parse_rpq("a{5,2}")


class TestExample9Query:
    def test_parses(self):
        ast = parse_rpq("h* s (h | s)*")
        assert ast == Concat(
            (
                Star(Label("h")),
                Label("s"),
                Star(Union((Label("h"), Label("s")))),
            )
        )


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "   ",
            "|",
            "a |",
            "| a",
            "(",
            "a)",
            "(a",
            "a{",
            "a{}",
            "a{x}",
            "a{1",
            "a{1,2",
            "*",
            "+a|",
            "'unterminated",
            "''",
            "a $ b",
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(RegexSyntaxError):
            parse_rpq(bad)

    def test_error_position_reported(self):
        with pytest.raises(RegexSyntaxError) as info:
            parse_rpq("a b ) c")
        assert info.value.position == 4


class TestRoundTrip:
    @pytest.mark.parametrize(
        "expression",
        [
            "a",
            "a b",
            "a | b",
            "a*",
            "a+",
            "a?",
            "a{2,5}",
            "a{3}",
            "a{2,}",
            "(a | b) c*",
            "h* s (h | s)*",
            ". a .",
            "ε | a",
            "'two words' b",
        ],
    )
    def test_str_reparses_to_same_ast(self, expression):
        ast = parse_rpq(expression)
        assert parse_rpq(str(ast)) == ast
