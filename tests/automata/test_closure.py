"""Unit and property tests for the regular-operation combinators."""

import pytest
from hypothesis import given, settings

from repro.automata import (
    NFA,
    complement_nfa,
    concat_nfa,
    difference_nfa,
    equivalent,
    intersect_nfa,
    is_deterministic,
    option_nfa,
    plus_nfa,
    regex_to_nfa,
    star_nfa,
    union_nfa,
)
from repro.automata.regex_ast import Concat, Optional, Plus, Star, Union
from repro.exceptions import AutomatonError

from tests.conftest import regex_asts


def _nfa_of(expr: str) -> NFA:
    return regex_to_nfa(expr)


class TestStructuralOperations:
    def test_union(self):
        combined = union_nfa(_nfa_of("a a"), _nfa_of("b"))
        assert combined.accepts(["a", "a"])
        assert combined.accepts(["b"])
        assert not combined.accepts(["a"])
        assert equivalent(combined, _nfa_of("a a | b"))

    def test_union_adds_no_transitions(self):
        left, right = _nfa_of("a"), _nfa_of("b")
        combined = union_nfa(left, right)
        assert combined.n_states == left.n_states + right.n_states
        assert (
            combined.transition_count
            == left.transition_count + right.transition_count
        )

    def test_concat(self):
        combined = concat_nfa(_nfa_of("a+"), _nfa_of("b"))
        assert combined.accepts(["a", "b"])
        assert combined.accepts(["a", "a", "b"])
        assert not combined.accepts(["b"])
        assert equivalent(combined, _nfa_of("a+ b"))

    def test_star(self):
        starred = star_nfa(_nfa_of("a b"))
        assert starred.accepts([])
        assert starred.accepts(["a", "b", "a", "b"])
        assert not starred.accepts(["a"])
        assert equivalent(starred, _nfa_of("(a b)*"))

    def test_plus_and_option(self):
        assert equivalent(plus_nfa(_nfa_of("a")), _nfa_of("a+"))
        assert equivalent(option_nfa(_nfa_of("a")), _nfa_of("a?"))
        assert option_nfa(_nfa_of("a")).accepts([])

    def test_intersect(self):
        meet = intersect_nfa(_nfa_of("a* b*"), _nfa_of("(a b)* | a"))
        assert meet.accepts(["a"])
        assert meet.accepts(["a", "b"])
        assert not meet.accepts(["a", "b", "a", "b"])  # Not in a*b*.
        assert not meet.accepts(["b", "a"])

    def test_intersect_handles_epsilon_inputs(self):
        meet = intersect_nfa(_nfa_of("a b c"), _nfa_of(". . ."))
        assert meet.accepts(["a", "b", "c"])
        assert not meet.accepts(["a", "b"])


class TestComplement:
    def test_basic(self):
        comp = complement_nfa(_nfa_of("a a"), alphabet=["a"])
        assert comp.accepts([])
        assert comp.accepts(["a"])
        assert not comp.accepts(["a", "a"])
        assert comp.accepts(["a", "a", "a"])
        assert is_deterministic(comp)

    def test_alphabet_widens_universe(self):
        comp = complement_nfa(_nfa_of("a"), alphabet=["a", "b"])
        assert comp.accepts(["b"])
        assert comp.accepts(["a", "b"])
        assert not comp.accepts(["a"])

    def test_alphabet_must_cover(self):
        with pytest.raises(AutomatonError, match="cover"):
            complement_nfa(_nfa_of("a b"), alphabet=["a"])

    def test_wildcard_rejected(self):
        with pytest.raises(AutomatonError, match="wildcard"):
            complement_nfa(_nfa_of(". a"))

    def test_double_complement_is_identity(self):
        for expr in ("a", "a* b", "(a|b)+", "<eps>"):
            nfa = _nfa_of(expr)
            sigma = ["a", "b"]
            twice = complement_nfa(
                complement_nfa(nfa, alphabet=sigma), alphabet=sigma
            )
            assert equivalent(twice, nfa), expr

    def test_empty_language_complement_is_universal(self):
        empty = NFA(1)
        empty.set_initial(0)
        comp = complement_nfa(empty, alphabet=["a"])
        assert comp.accepts([])
        assert comp.accepts(["a", "a", "a"])


class TestDifference:
    def test_basic(self):
        diff = difference_nfa(_nfa_of("a*"), _nfa_of("a a"))
        assert diff.accepts([])
        assert diff.accepts(["a"])
        assert not diff.accepts(["a", "a"])
        assert diff.accepts(["a", "a", "a"])

    def test_joint_alphabet_default(self):
        # 'b' is not in right's alphabet; words with b must be kept.
        diff = difference_nfa(_nfa_of("a | b"), _nfa_of("a"))
        assert diff.accepts(["b"])
        assert not diff.accepts(["a"])

    def test_disjoint_difference_is_left(self):
        left = _nfa_of("a a")
        diff = difference_nfa(left, _nfa_of("b"))
        assert equivalent(diff, left)


class TestAgainstRegexConstructions:
    """The combinators must agree with the AST-level constructions."""

    @given(regex_asts(max_depth=2), regex_asts(max_depth=2))
    @settings(max_examples=40, deadline=None)
    def test_union_matches_ast(self, left_ast, right_ast):
        structural = union_nfa(
            regex_to_nfa(left_ast), regex_to_nfa(right_ast)
        )
        syntactic = regex_to_nfa(Union((left_ast, right_ast)))
        assert equivalent(structural, syntactic)

    @given(regex_asts(max_depth=2), regex_asts(max_depth=2))
    @settings(max_examples=40, deadline=None)
    def test_concat_matches_ast(self, left_ast, right_ast):
        structural = concat_nfa(
            regex_to_nfa(left_ast), regex_to_nfa(right_ast)
        )
        syntactic = regex_to_nfa(Concat((left_ast, right_ast)))
        assert equivalent(structural, syntactic)

    @given(regex_asts(max_depth=2))
    @settings(max_examples=40, deadline=None)
    def test_star_plus_option_match_ast(self, ast):
        nfa = regex_to_nfa(ast)
        assert equivalent(star_nfa(nfa), regex_to_nfa(Star(ast)))
        assert equivalent(plus_nfa(nfa), regex_to_nfa(Plus(ast)))
        assert equivalent(option_nfa(nfa), regex_to_nfa(Optional(ast)))

    @given(regex_asts(max_depth=2), regex_asts(max_depth=2))
    @settings(max_examples=30, deadline=None)
    def test_de_morgan(self, left_ast, right_ast):
        """complement(L ∪ R) = complement(L) ∩ complement(R)."""
        left, right = regex_to_nfa(left_ast), regex_to_nfa(right_ast)
        if left.uses_wildcard or right.uses_wildcard:
            return
        sigma = ["a", "b", "c"]
        lhs = complement_nfa(union_nfa(left, right), alphabet=sigma)
        rhs = intersect_nfa(
            complement_nfa(left, alphabet=sigma),
            complement_nfa(right, alphabet=sigma),
        )
        assert equivalent(lhs, rhs)

    @given(regex_asts(max_depth=2))
    @settings(max_examples=30, deadline=None)
    def test_difference_with_self_is_empty(self, ast):
        nfa = regex_to_nfa(ast)
        if nfa.uses_wildcard:
            return
        assert difference_nfa(nfa, nfa).is_empty_language()
