"""Unit tests for regex AST desugaring and size accounting."""

import pytest
from hypothesis import given, settings

from repro.automata.regex_ast import (
    AnyAtom,
    Concat,
    EpsilonAtom,
    Label,
    Optional,
    Plus,
    Repeat,
    Star,
    Union,
    ast_size,
    desugar,
)
from repro.automata import thompson_nfa
from repro.exceptions import RegexSyntaxError

from tests.conftest import regex_asts

_WORDS = [
    [],
    ["a"],
    ["b"],
    ["a", "a"],
    ["a", "a", "a"],
    ["a", "b"],
    ["a", "a", "a", "a"],
]


def _core_only(node) -> bool:
    if isinstance(node, (Label, AnyAtom, EpsilonAtom)):
        return True
    if isinstance(node, (Concat, Union)):
        return all(_core_only(p) for p in node.parts)
    if isinstance(node, Star):
        return _core_only(node.child)
    return False


class TestDesugar:
    def test_plus(self):
        assert desugar(Plus(Label("a"))) == Concat(
            (Label("a"), Star(Label("a")))
        )

    def test_optional(self):
        assert desugar(Optional(Label("a"))) == Union(
            (EpsilonAtom(), Label("a"))
        )

    def test_repeat_exact(self):
        core = desugar(Repeat(Label("a"), 3, 3))
        assert core == Concat((Label("a"), Label("a"), Label("a")))

    def test_repeat_unbounded(self):
        core = desugar(Repeat(Label("a"), 2, None))
        assert core == Concat((Label("a"), Label("a"), Star(Label("a"))))

    def test_repeat_range(self):
        core = desugar(Repeat(Label("a"), 1, 2))
        nfa = thompson_nfa(core)
        assert not nfa.accepts([])
        assert nfa.accepts(["a"])
        assert nfa.accepts(["a", "a"])
        assert not nfa.accepts(["a", "a", "a"])

    def test_repeat_zero_zero(self):
        assert desugar(Repeat(Label("a"), 0, 0)) == EpsilonAtom()

    def test_repeat_zero_unbounded_is_star(self):
        assert desugar(Repeat(Label("a"), 0, None)) == Star(Label("a"))

    @given(regex_asts())
    @settings(max_examples=60)
    def test_desugared_is_core(self, ast):
        assert _core_only(desugar(ast))

    @given(regex_asts())
    @settings(max_examples=60)
    def test_language_preserved(self, ast):
        original = thompson_nfa(ast)       # thompson desugars internally
        cored = thompson_nfa(desugar(ast))  # already core: same language
        for word in _WORDS:
            assert original.accepts(word) == cored.accepts(word), word


class TestAstSize:
    def test_atom(self):
        assert ast_size(Label("a")) == 1
        assert ast_size(AnyAtom()) == 1

    def test_compound(self):
        ast = Concat((Label("a"), Star(Label("b"))))
        # concat + a + star + b = 4.
        assert ast_size(ast) == 4

    def test_repeat_counts_once(self):
        assert ast_size(Repeat(Label("a"), 2, 5)) == 2


class TestValidation:
    def test_empty_label_rejected(self):
        with pytest.raises(RegexSyntaxError):
            Label("")

    def test_single_part_concat_rejected(self):
        with pytest.raises(RegexSyntaxError):
            Concat((Label("a"),))

    def test_single_part_union_rejected(self):
        with pytest.raises(RegexSyntaxError):
            Union((Label("a"),))

    def test_negative_repeat_rejected(self):
        with pytest.raises(RegexSyntaxError):
            Repeat(Label("a"), -1, 2)
