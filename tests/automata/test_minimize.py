"""Unit and property tests for DFA minimization and language keys."""

from hypothesis import given, settings

from repro.automata import (
    NFA,
    determinize,
    equivalent,
    glushkov_nfa,
    is_deterministic,
    language_key,
    minimize,
    minimize_brzozowski,
    regex_to_nfa,
)

from tests.conftest import regex_asts, small_nfas


def _nfa_of(expr: str) -> NFA:
    return regex_to_nfa(expr)


class TestMinimize:
    def test_result_is_deterministic(self):
        dfa = minimize(_nfa_of("(a | b)* a"))
        assert is_deterministic(dfa)

    def test_known_minimal_sizes(self):
        # a* needs 1 state; (a|b)* a (b|a) needs 4 (suffix automaton).
        assert minimize(_nfa_of("a*")).n_states == 1
        assert minimize(_nfa_of("a a a")).n_states == 4
        # L = words over {a,b} ending in 'ab': classic 3-state DFA.
        assert minimize(_nfa_of("(a | b)* a b")).n_states == 3

    def test_empty_language(self):
        nfa = NFA(2)
        nfa.add_transition(0, "a", 1)
        nfa.set_initial(0)  # No final states: L = ∅.
        dfa = minimize(nfa)
        assert dfa.n_states == 1
        assert not dfa.final
        assert dfa.is_empty_language()

    def test_epsilon_language(self):
        dfa = minimize(_nfa_of("<eps>"))
        assert dfa.n_states == 1
        assert dfa.accepts([])
        assert not dfa.accepts(["a"])

    def test_dead_states_removed(self):
        nfa = NFA(3)
        nfa.add_transition(0, "a", 1)
        nfa.add_transition(0, "b", 2)  # State 2 is a dead end.
        nfa.set_initial(0)
        nfa.set_final(1)
        dfa = minimize(nfa)
        assert dfa.n_states == 2  # {0}, {1}; the dead branch is gone.
        assert dfa.accepts(["a"]) and not dfa.accepts(["b"])

    def test_language_preserved_on_example(self):
        nfa = _nfa_of("h* s (h | s)*")
        dfa = minimize(nfa)
        for word, expected in [
            ("s", True),
            ("hs", True),
            ("hh", False),
            ("hshh", True),
            ("", False),
            ("shsh", True),
        ]:
            assert dfa.accepts(list(word)) == expected

    def test_wildcard_handled(self):
        from repro.automata.minimize import OTHER

        dfa = minimize(_nfa_of(". a"))
        assert dfa.accepts(["a", "a"])
        assert dfa.accepts([OTHER, "a"])
        assert not dfa.accepts(["a", OTHER])


class TestBrzozowski:
    def test_agrees_with_hopcroft_on_examples(self):
        for expr in ("a", "a*", "(a | b)* a b", "h* s (h | s)*", "a{2,4}"):
            nfa = _nfa_of(expr)
            h = minimize(nfa)
            b = minimize_brzozowski(nfa)
            assert h.n_states == b.n_states
            assert equivalent(h, b)

    def test_empty_language_normalized(self):
        nfa = NFA(1)
        nfa.set_initial(0)
        dfa = minimize_brzozowski(nfa)
        assert dfa.n_states == 1 and not dfa.final


class TestLanguageKey:
    def test_equal_languages_equal_keys(self):
        pairs = [
            ("a | b", "b | a"),
            ("a* a*", "a*"),
            ("(a b)* a", "a (b a)*"),
            ("a? a?", "a | a a | <eps>"),
        ]
        for left, right in pairs:
            assert language_key(_nfa_of(left)) == language_key(
                _nfa_of(right)
            ), (left, right)

    def test_different_languages_different_keys(self):
        pairs = [("a", "a a"), ("a*", "a+"), ("a | b", "a")]
        for left, right in pairs:
            assert language_key(_nfa_of(left)) != language_key(
                _nfa_of(right)
            ), (left, right)

    def test_key_is_hashable(self):
        table = {language_key(_nfa_of("a*")): "kleene"}
        assert table[language_key(_nfa_of("a* a*"))] == "kleene"

    def test_wildcard_folding(self):
        """Symbols behaving like 'any other label' fold into OTHER, so
        syntactically different alphabets cannot split equal languages."""
        assert language_key(_nfa_of("a | .")) == language_key(_nfa_of("."))
        assert language_key(_nfa_of("(a | .)*")) == language_key(
            _nfa_of(".*")
        )
        # But a symbol with *distinct* behaviour is kept.
        assert language_key(_nfa_of("a")) != language_key(_nfa_of("."))
        assert language_key(_nfa_of(". a")) != language_key(_nfa_of(". b"))


class TestProperties:
    @given(regex_asts())
    @settings(max_examples=80, deadline=None)
    def test_minimize_preserves_language(self, ast):
        nfa = regex_to_nfa(ast)
        dfa = minimize(nfa)
        assert equivalent(nfa, dfa)

    @given(regex_asts())
    @settings(max_examples=60, deadline=None)
    def test_hopcroft_matches_brzozowski(self, ast):
        nfa = regex_to_nfa(ast)
        h = minimize(nfa)
        b = minimize_brzozowski(nfa)
        assert h.n_states == b.n_states
        assert equivalent(h, b)

    @given(regex_asts())
    @settings(max_examples=60, deadline=None)
    def test_minimal_is_no_larger_than_determinized(self, ast):
        nfa = regex_to_nfa(ast)
        from repro.automata.minimize import _expand_wildcard

        expanded = _expand_wildcard(nfa)
        assert (
            minimize(nfa).n_states
            <= determinize(expanded).n_states + 1
        )

    @given(small_nfas())
    @settings(max_examples=60, deadline=None)
    def test_language_key_consistent_with_equivalence(self, nfa):
        dfa = minimize(nfa)
        assert (language_key(nfa) == language_key(dfa)) is True
        assert equivalent(nfa, dfa)


class TestPipelinesAgree:
    @given(regex_asts())
    @settings(max_examples=80, deadline=None)
    def test_thompson_equals_glushkov(self, ast):
        """The two regex→NFA constructions define the same language."""
        thompson = regex_to_nfa(ast, method="thompson")
        glushkov = glushkov_nfa(ast)
        assert equivalent(thompson, glushkov)

    @given(regex_asts())
    @settings(max_examples=60, deadline=None)
    def test_language_keys_agree_across_pipelines(self, ast):
        assert language_key(regex_to_nfa(ast)) == language_key(
            glushkov_nfa(ast)
        )
