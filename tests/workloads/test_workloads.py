"""Unit tests for the workload generators and query catalog."""

import pytest

from repro.automata import regex_to_nfa
from repro.core.engine import DistinctShortestWalks
from repro.graph import validate_graph
from repro.query import rpq
from repro.workloads import (
    QUERY_CATALOG,
    diamond_chain,
    duplicate_bomb,
    example9_automaton,
    example9_graph,
    example9_query,
    fraud_network,
    social_network,
    wide_nfa,
)


class TestExample9Artifacts:
    def test_graph_validates(self):
        validate_graph(example9_graph())

    def test_query_string_equals_automaton(self):
        """The regex form and the hand-built NFA define one language."""
        nfa_hand = example9_automaton()
        nfa_regex = regex_to_nfa(example9_query)
        words = [
            [],
            ["h"],
            ["s"],
            ["h", "h"],
            ["h", "s"],
            ["s", "h"],
            ["h", "h", "s"],
            ["h", "s", "s"],
            ["s", "s", "s"],
            ["h", "h", "h"],
        ]
        for word in words:
            assert nfa_hand.accepts(word) == nfa_regex.accepts(word), word


class TestFraudNetwork:
    def test_reproducible(self):
        g1 = fraud_network(50, 200, seed=3)
        g2 = fraud_network(50, 200, seed=3)
        assert g1.edge_count == g2.edge_count
        assert all(g1.labels(e) == g2.labels(e) for e in g1.edges())

    def test_validates(self):
        validate_graph(fraud_network(30, 100, seed=1))

    def test_planted_chain_answerable(self):
        """The mule chain guarantees Example 9's query has answers."""
        g = fraud_network(40, 120, seed=7, chain_length=3)
        engine = DistinctShortestWalks(
            g, "(h | s | w | c)* s (h | s | w | c)*", "acct0", "acct39"
        )
        assert engine.lam is not None

    def test_labels_in_catalogued_alphabet(self):
        g = fraud_network(20, 60, seed=2)
        assert set(g.alphabet) <= {"h", "s", "w", "c"}


class TestSocialNetwork:
    def test_reproducible_and_valid(self):
        g1 = social_network(60, seed=4)
        g2 = social_network(60, seed=4)
        assert g1.edge_count == g2.edge_count
        validate_graph(g1)

    def test_multi_labeled_edges_exist(self):
        g = social_network(120, seed=1, mention_rate=0.8)
        assert any(len(g.labels(e)) > 1 for e in g.edges())

    def test_labels(self):
        g = social_network(40, seed=0)
        assert set(g.alphabet) <= {"knows", "follows", "mentions"}


class TestWorstCase:
    def test_duplicate_bomb_unique_answer(self):
        graph, nfa, s, t = duplicate_bomb(7, 4)
        engine = DistinctShortestWalks(graph, nfa, s, t)
        assert engine.count() == 1
        assert engine.lam == 7

    def test_wide_nfa_shape(self):
        nfa = wide_nfa(5, ("a", "b"))
        assert nfa.n_states == 5
        assert nfa.transition_count == 5 * 5 * 2

    def test_diamond_chain_answer_count(self):
        graph, nfa, s, t = diamond_chain(6, parallel=3)
        engine = DistinctShortestWalks(graph, nfa, s, t)
        assert engine.count() == 3 ** 6

    def test_label_soup_answer_set_unchanged_by_noise(self):
        from repro.workloads.worstcase import label_soup

        graph, nfa, s, t = label_soup(
            5, parallel=2, extra_labels=6, noise_out=3
        )
        # 6 noise labels + the matching one; noise edges are real.
        assert graph.label_count == 7
        assert graph.edge_count == 5 * (2 + 3)
        engine = DistinctShortestWalks(graph, nfa, s, t)
        assert engine.count() == 2 ** 5
        assert engine.lam == 5

    def test_label_soup_without_noise_is_diamond_chain(self):
        from repro.workloads.worstcase import label_soup

        graph, nfa, s, t = label_soup(
            4, parallel=3, extra_labels=0, noise_out=5
        )
        assert graph.label_count == 1
        assert graph.edge_count == 4 * 3  # noise needs noise labels
        engine = DistinctShortestWalks(graph, nfa, s, t)
        assert engine.count() == 3 ** 4


class TestQueryCatalog:
    @pytest.mark.parametrize("name", sorted(QUERY_CATALOG))
    def test_every_query_parses(self, name):
        q = rpq(QUERY_CATALOG[name])
        assert q.size >= 1

    def test_example9_entry_matches(self):
        assert QUERY_CATALOG["example9"] == example9_query


class TestTransportNetwork:
    def test_structure(self):
        from repro.workloads.transport import transport_network

        graph = transport_network(10, seed=1)
        assert graph.vertex_count == 10
        # Ring: 2 ground modes × 2 directions × 10 pairs = 40 edges,
        # plus hub flights.
        assert graph.edge_count >= 40
        assert set(graph.alphabet) == {"train", "bus", "flight"}
        assert graph.has_costs

    def test_costs_positive_and_in_range(self):
        from repro.workloads.transport import (
            DEFAULT_MODE_COSTS,
            transport_network,
        )

        graph = transport_network(8, seed=2)
        for e in graph.edges():
            (label,) = graph.label_names_of(e)
            lo, hi = DEFAULT_MODE_COSTS[label]
            assert lo <= graph.cost(e) <= hi

    def test_deterministic_by_seed(self):
        from repro.workloads.transport import transport_network

        a = transport_network(12, seed=7)
        b = transport_network(12, seed=7)
        assert a.edge_count == b.edge_count
        assert [a.cost(e) for e in a.edges()] == [
            b.cost(e) for e in b.edges()
        ]

    def test_ring_guarantees_connectivity(self):
        from repro.core.cheapest import DistinctCheapestWalks
        from repro.workloads.transport import (
            antipodal_pair,
            transport_network,
        )
        from repro.automata import regex_to_nfa

        graph = transport_network(9, seed=3)
        src, tgt = antipodal_pair(graph)
        engine = DistinctCheapestWalks(
            graph, regex_to_nfa("(train | bus | flight)+"), src, tgt
        )
        assert engine.cheapest_cost is not None

    def test_policies_answerable(self):
        from repro.core.cheapest import DistinctCheapestWalks
        from repro.workloads.transport import (
            TRANSPORT_QUERIES,
            antipodal_pair,
            transport_network,
        )
        from repro.automata import regex_to_nfa

        graph = transport_network(10, seed=4)
        src, tgt = antipodal_pair(graph)
        costs = {}
        for name, expr in TRANSPORT_QUERIES.items():
            engine = DistinctCheapestWalks(
                graph, regex_to_nfa(expr), src, tgt
            )
            costs[name] = engine.cheapest_cost
        # Ground-only always answerable (the ring); constraining can
        # only raise the optimum.
        assert costs["ground_only"] is not None
        assert costs["anything"] <= costs["ground_only"]
        assert costs["anything"] <= costs["no_bus"]

    def test_validation(self):
        import pytest

        from repro.exceptions import GraphError
        from repro.workloads.transport import transport_network

        with pytest.raises(GraphError):
            transport_network(1)
        with pytest.raises(GraphError):
            transport_network(5, hub_fraction=1.5)
        with pytest.raises(GraphError):
            transport_network(5, mode_costs={"train": (0, 10)})
