"""Unit tests for the naive product-path baseline."""

import pytest
from hypothesis import given, settings

from repro.baselines.naive import NaiveStats, naive_enumerate
from repro.baselines.oracle import oracle_answer_set
from repro.core.compile import compile_query
from repro.core.engine import DistinctShortestWalks
from repro.workloads.fraud import example9_automaton, example9_graph
from repro.workloads.worstcase import duplicate_bomb

from tests.conftest import small_instances


class TestExample9:
    def test_same_answer_set_as_engine(self):
        graph = example9_graph()
        cq = compile_query(graph, example9_automaton())
        s, t = graph.vertex_id("Alix"), graph.vertex_id("Bob")
        naive = sorted(w.edges for w in naive_enumerate(cq, s, t))
        engine = sorted(
            w.edges
            for w in DistinctShortestWalks(
                graph, example9_automaton(), "Alix", "Bob"
            ).enumerate()
        )
        assert naive == engine

    def test_duplicate_accounting(self):
        graph = example9_graph()
        cq = compile_query(graph, example9_automaton())
        s, t = graph.vertex_id("Alix"), graph.vertex_id("Bob")
        stats = NaiveStats()
        outputs = list(naive_enumerate(cq, s, t, stats))
        assert stats.outputs == len(outputs) == 4
        assert stats.product_paths == stats.outputs + stats.duplicates_suppressed
        assert stats.lam == 3
        assert stats.dedup_set_size == 4


class TestDuplicateBomb:
    def test_exponential_paths_single_output(self):
        """m^k product paths collapse to one walk (EXP-NAIVE)."""
        graph, nfa, s, t = duplicate_bomb(5, 3)
        cq = compile_query(graph, nfa)
        stats = NaiveStats()
        outputs = list(
            naive_enumerate(
                cq, graph.vertex_id(s), graph.vertex_id(t), stats
            )
        )
        assert len(outputs) == 1
        assert stats.product_paths == 3 ** 5
        assert stats.duplicates_suppressed == 3 ** 5 - 1

    def test_cap_raises(self):
        graph, nfa, s, t = duplicate_bomb(6, 3)
        cq = compile_query(graph, nfa)
        with pytest.raises(RuntimeError, match="exceeded"):
            list(
                naive_enumerate(
                    cq,
                    graph.vertex_id(s),
                    graph.vertex_id(t),
                    max_product_paths=100,
                )
            )


class TestEdgeCases:
    def test_no_matching_walk(self):
        graph = example9_graph()
        cq = compile_query(graph, example9_automaton())
        stats = NaiveStats()
        out = list(
            naive_enumerate(
                cq, graph.vertex_id("Bob"), graph.vertex_id("Alix"), stats
            )
        )
        assert out == []
        assert stats.lam is None

    def test_lambda_zero(self):
        from repro.automata import NFA

        graph = example9_graph()
        nfa = NFA(1)
        nfa.add_transition(0, "h", 0)
        nfa.set_initial(0)
        nfa.set_final(0)
        cq = compile_query(graph, nfa)
        alix = graph.vertex_id("Alix")
        stats = NaiveStats()
        out = list(naive_enumerate(cq, alix, alix, stats))
        assert len(out) == 1 and out[0].length == 0
        assert stats.lam == 0

    def test_eps_compiled_query_rejected(self):
        from repro.automata import regex_to_nfa

        graph = example9_graph()
        cq = compile_query(
            graph, regex_to_nfa("h s"), eliminate_epsilon=False
        )
        with pytest.raises(ValueError):
            list(naive_enumerate(cq, 0, 1))


class TestProperties:
    @given(small_instances())
    @settings(max_examples=60, deadline=None)
    def test_matches_oracle(self, instance):
        graph, nfa, s, t = instance
        cq = compile_query(graph, nfa)
        got = sorted(w.edges for w in naive_enumerate(cq, s, t))
        assert got == oracle_answer_set(graph, nfa, s, t)

    @given(small_instances())
    @settings(max_examples=40, deadline=None)
    def test_stats_invariants(self, instance):
        graph, nfa, s, t = instance
        cq = compile_query(graph, nfa)
        stats = NaiveStats()
        outputs = list(naive_enumerate(cq, s, t, stats))
        assert stats.outputs == len(outputs)
        if stats.lam not in (None, 0):
            assert (
                stats.product_paths
                == stats.outputs + stats.duplicates_suppressed
            )
        assert stats.product_paths >= stats.outputs - (stats.lam == 0)
