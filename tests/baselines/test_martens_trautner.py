"""Unit tests for the Martens–Trautner reduction (Theorem 1)."""

from hypothesis import given, settings

from repro.baselines.martens_trautner import (
    build_product_automaton,
    martens_trautner_walks,
)
from repro.baselines.oracle import oracle_answer_set
from repro.core.compile import compile_query
from repro.core.engine import DistinctShortestWalks
from repro.workloads.fraud import example9_automaton, example9_graph

from tests.conftest import small_instances


class TestProductAutomaton:
    def test_shape_on_example9(self):
        graph = example9_graph()
        cq = compile_query(graph, example9_automaton())
        s, t = graph.vertex_id("Alix"), graph.vertex_id("Bob")
        product = build_product_automaton(cq, s, t)
        # Initial = {s} × I.
        assert product.initial == {s * cq.n_states + 0}
        # States are reachable (v, q) pairs only.
        assert product.n_states <= graph.vertex_count * cq.n_states
        assert product.n_transitions > 0

    def test_words_are_edge_sequences(self):
        graph = example9_graph()
        cq = compile_query(graph, example9_automaton())
        s, t = graph.vertex_id("Alix"), graph.vertex_id("Bob")
        product = build_product_automaton(cq, s, t)
        for state, moves in product.transitions.items():
            for edge in moves:
                assert 0 <= edge < graph.edge_count
                # The transition respects the edge's source vertex.
                assert state // cq.n_states == graph.src(edge)


class TestEnumeration:
    def test_example9(self):
        graph = example9_graph()
        cq = compile_query(graph, example9_automaton())
        s, t = graph.vertex_id("Alix"), graph.vertex_id("Bob")
        got = sorted(w.edges for w in martens_trautner_walks(cq, s, t))
        reference = sorted(
            w.edges
            for w in DistinctShortestWalks(
                graph, example9_automaton(), "Alix", "Bob"
            ).enumerate()
        )
        assert got == reference

    def test_radix_order(self):
        """Words come out in lexicographic edge-id order."""
        graph = example9_graph()
        cq = compile_query(graph, example9_automaton())
        s, t = graph.vertex_id("Alix"), graph.vertex_id("Bob")
        sequences = [w.edges for w in martens_trautner_walks(cq, s, t)]
        assert sequences == sorted(sequences)

    def test_no_matching_walk(self):
        graph = example9_graph()
        cq = compile_query(graph, example9_automaton())
        s, t = graph.vertex_id("Bob"), graph.vertex_id("Alix")
        assert list(martens_trautner_walks(cq, s, t)) == []

    def test_lambda_zero(self):
        from repro.automata import NFA

        graph = example9_graph()
        nfa = NFA(1)
        nfa.add_transition(0, "h", 0)
        nfa.set_initial(0)
        nfa.set_final(0)
        cq = compile_query(graph, nfa)
        alix = graph.vertex_id("Alix")
        walks = list(martens_trautner_walks(cq, alix, alix))
        assert len(walks) == 1 and walks[0].length == 0


class TestProperties:
    @given(small_instances())
    @settings(max_examples=60, deadline=None)
    def test_matches_oracle(self, instance):
        graph, nfa, s, t = instance
        cq = compile_query(graph, nfa)
        got = sorted(w.edges for w in martens_trautner_walks(cq, s, t))
        assert got == oracle_answer_set(graph, nfa, s, t)

    @given(small_instances(allow_epsilon=True))
    @settings(max_examples=40, deadline=None)
    def test_epsilon_instances(self, instance):
        """The reduction folds ε in via closures; compare on raw ε
        tables to exercise that code path."""
        graph, nfa, s, t = instance
        cq = compile_query(graph, nfa, eliminate_epsilon=False)
        got = sorted(w.edges for w in martens_trautner_walks(cq, s, t))
        assert got == oracle_answer_set(graph, nfa, s, t)
