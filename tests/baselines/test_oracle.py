"""Sanity tests for the brute-force oracle itself."""

import pytest

from repro.automata import NFA
from repro.baselines.oracle import oracle_answer_set, oracle_lam
from repro.graph import GraphBuilder
from repro.workloads.fraud import (
    EXAMPLE9_EDGE_IDS,
    example9_automaton,
    example9_graph,
)


class TestOracleLam:
    def test_example9(self):
        graph = example9_graph()
        s, t = graph.vertex_id("Alix"), graph.vertex_id("Bob")
        assert oracle_lam(graph, example9_automaton(), s, t) == 3

    def test_unreachable(self):
        graph = example9_graph()
        s, t = graph.vertex_id("Bob"), graph.vertex_id("Alix")
        assert oracle_lam(graph, example9_automaton(), s, t) is None

    def test_lambda_zero(self):
        graph = example9_graph()
        nfa = NFA(1)
        nfa.set_initial(0)
        nfa.set_final(0)
        alix = graph.vertex_id("Alix")
        assert oracle_lam(graph, nfa, alix, alix) == 0


class TestOracleAnswers:
    def test_example9_answers(self):
        graph = example9_graph()
        s, t = graph.vertex_id("Alix"), graph.vertex_id("Bob")
        answers = oracle_answer_set(graph, example9_automaton(), s, t)
        expected = sorted(
            tuple(EXAMPLE9_EDGE_IDS[n] for n in names)
            for names in (
                ("e1", "e5", "e8"),
                ("e1", "e6", "e8"),
                ("e2", "e3", "e7"),
                ("e2", "e4", "e8"),
            )
        )
        assert answers == expected

    def test_budget_guard(self):
        # A dense blow-up instance with a tiny budget must abort.
        b = GraphBuilder()
        for i in range(6):
            for _ in range(4):
                b.add_edge(f"v{i}", f"v{i+1}", ["a"])
        graph = b.build()
        nfa = NFA(1)
        nfa.add_transition(0, "a", 0)
        nfa.set_initial(0)
        nfa.set_final(0)
        with pytest.raises(RuntimeError):
            oracle_answer_set(
                graph,
                nfa,
                graph.vertex_id("v0"),
                graph.vertex_id("v6"),
                max_walks=10,
            )
