"""Unit tests for the untrimmed (no-``Trim``) ablation baseline."""

from hypothesis import given, settings

from repro.baselines.untrimmed import UntrimmedStats, enumerate_untrimmed
from repro.core.annotate import annotate
from repro.core.cheapest import DistinctCheapestWalks, cheapest_annotate
from repro.core.compile import compile_query
from repro.core.engine import DistinctShortestWalks
from repro.graph.builder import GraphBuilder
from repro.workloads.fraud import example9_automaton, example9_graph
from repro.workloads.worstcase import decoy_indegree, diamond_chain

from tests.conftest import small_instances


def _untrimmed_via_engine(engine, stats=None):
    """Run the ablation enumeration off an engine's annotation."""
    ann = engine.annotation
    return list(
        enumerate_untrimmed(
            engine.graph,
            ann,
            ann.lam,
            engine.target,
            ann.target_states,
            stats=stats,
        )
    )


class TestExample9:
    def test_same_sequence_as_trimmed(self):
        engine = DistinctShortestWalks(
            example9_graph(), example9_automaton(), "Alix", "Bob"
        )
        trimmed_seq = [w.edges for w in engine.enumerate()]
        untrimmed_seq = [w.edges for w in _untrimmed_via_engine(engine)]
        assert untrimmed_seq == trimmed_seq
        assert len(untrimmed_seq) == 4

    def test_stats_counters(self):
        engine = DistinctShortestWalks(
            example9_graph(), example9_automaton(), "Alix", "Bob"
        )
        stats = UntrimmedStats()
        outputs = _untrimmed_via_engine(engine, stats)
        assert stats.outputs == len(outputs) == 4
        # Each answer has λ=3 edges; the tree has one node per suffix.
        assert stats.tree_nodes >= 3 * 4 - 2  # Shared suffixes collapse.
        assert stats.cells_scanned > 0


class TestDecoyScaling:
    def test_decoys_do_not_change_answers(self):
        for decoys in (0, 5, 50):
            graph, nfa, s, t = decoy_indegree(4, parallel=2, decoys=decoys)
            engine = DistinctShortestWalks(graph, nfa, s, t)
            assert engine.count() == 2 ** 4

    def test_untrimmed_scans_grow_with_decoys(self):
        """The factor-d claim of Section 3.2, deterministically."""
        scans = []
        for decoys in (0, 10, 100):
            graph, nfa, s, t = decoy_indegree(4, parallel=2, decoys=decoys)
            engine = DistinctShortestWalks(graph, nfa, s, t)
            stats = UntrimmedStats()
            outputs = _untrimmed_via_engine(engine, stats)
            assert len(outputs) == 2 ** 4
            scans.append(stats.cells_scanned)
        assert scans[0] < scans[1] < scans[2]
        # Scan count is dominated by decoys × tree nodes: superlinear
        # growth from 10 to 100 decoys.
        assert scans[2] > 5 * scans[1]

    def test_trimmed_work_is_decoy_independent(self):
        """Queue sizes (the trimmed enumeration's working set) do not
        grow with the decoy count."""
        items = []
        for decoys in (0, 100):
            graph, nfa, s, t = decoy_indegree(4, parallel=2, decoys=decoys)
            engine = DistinctShortestWalks(graph, nfa, s, t)
            engine.preprocess()
            items.append(engine.trimmed.total_items())
        assert items[0] == items[1]


class TestEdgeCases:
    def test_no_matching_walk(self):
        graph = example9_graph()
        cq = compile_query(graph, example9_automaton())
        bob, alix = graph.vertex_id("Bob"), graph.vertex_id("Alix")
        ann = annotate(cq, bob, alix)
        out = list(
            enumerate_untrimmed(graph, ann, ann.lam, alix, ann.target_states)
        )
        assert out == []

    def test_lambda_zero(self):
        from repro.automata import NFA

        graph = example9_graph()
        nfa = NFA(1)
        nfa.add_transition(0, "h", 0)
        nfa.set_initial(0)
        nfa.set_final(0)
        cq = compile_query(graph, nfa)
        alix = graph.vertex_id("Alix")
        ann = annotate(cq, alix, alix)
        out = list(
            enumerate_untrimmed(graph, ann, ann.lam, alix, ann.target_states)
        )
        assert len(out) == 1 and out[0].length == 0

    def test_diamond_chain_counts(self):
        graph, nfa, s, t = diamond_chain(5, parallel=3)
        engine = DistinctShortestWalks(graph, nfa, s, t)
        stats = UntrimmedStats()
        outputs = _untrimmed_via_engine(engine, stats)
        assert len(outputs) == 3 ** 5
        assert stats.outputs == 3 ** 5


class TestCheapestVariant:
    def test_cost_budget_enumeration(self):
        builder = GraphBuilder()
        builder.add_edge("a", "b", ["x"], cost=2)
        builder.add_edge("a", "b", ["x"], cost=2)
        builder.add_edge("b", "c", ["x"], cost=3)
        builder.add_edge("a", "c", ["x"], cost=6)
        graph = builder.build()
        from repro.automata import regex_to_nfa

        nfa = regex_to_nfa("x | x x")
        cheap = DistinctCheapestWalks(graph, nfa, "a", "c")
        expected = sorted(w.edges for w in cheap.enumerate())

        cq = compile_query(graph, nfa)
        a, c = graph.vertex_id("a"), graph.vertex_id("c")
        ann = cheapest_annotate(cq, a, c)
        cost_arr = graph.cost_array
        got = sorted(
            w.edges
            for w in enumerate_untrimmed(
                graph,
                ann,
                ann.lam,
                c,
                ann.target_states,
                cost_of=lambda e: cost_arr[e],
            )
        )
        assert got == expected
        assert len(got) == 2  # Both a->b edges, then b->c; a->c too dear.


class TestProperties:
    @given(small_instances())
    @settings(max_examples=80, deadline=None)
    def test_sequence_matches_trimmed(self, instance):
        graph, nfa, s, t = instance
        engine = DistinctShortestWalks(graph, nfa, s, t)
        trimmed_seq = [w.edges for w in engine.enumerate()]
        if engine.lam is None:
            assert trimmed_seq == []
            return
        untrimmed_seq = [w.edges for w in _untrimmed_via_engine(engine)]
        assert untrimmed_seq == trimmed_seq

    @given(small_instances(allow_epsilon=True))
    @settings(max_examples=40, deadline=None)
    def test_sequence_matches_with_epsilon(self, instance):
        graph, nfa, s, t = instance
        engine = DistinctShortestWalks(graph, nfa, s, t)
        trimmed_seq = [w.edges for w in engine.enumerate()]
        if engine.lam is None:
            return
        untrimmed_seq = [w.edges for w in _untrimmed_via_engine(engine)]
        assert untrimmed_seq == trimmed_seq
