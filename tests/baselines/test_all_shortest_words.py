"""Unit tests for the Ackerman–Shallit shortest-word enumerator."""

from hypothesis import given, settings

from repro.baselines.all_shortest_words import all_shortest_words

from tests.conftest import small_nfas


def _as_tables(nfa):
    """NFA -> the generic (initial, final, transitions) interface."""
    transitions = {}
    for q in nfa.states():
        moves = {}
        for label, targets in nfa.transitions_from(q):
            moves[label] = list(targets)
        if moves:
            transitions[q] = moves
    return set(nfa.initial), set(nfa.final), transitions


class TestHandBuilt:
    def test_single_word(self):
        transitions = {0: {"a": [1]}, 1: {"b": [2]}}
        words = list(all_shortest_words({0}, {2}, transitions))
        assert words == [("a", "b")]

    def test_lexicographic_order(self):
        # Shortest words of length 2: ab, ba, bb say.
        transitions = {
            0: {"a": [1], "b": [2]},
            1: {"b": [3]},
            2: {"a": [3], "b": [3]},
        }
        words = list(all_shortest_words({0}, {3}, transitions))
        assert words == [("a", "b"), ("b", "a"), ("b", "b")]

    def test_no_duplicates_on_nondeterminism(self):
        # Two runs for "a": the word must appear once.
        transitions = {0: {"a": [1, 2]}}
        words = list(all_shortest_words({0}, {1, 2}, transitions))
        assert words == [("a",)]

    def test_epsilon_word(self):
        words = list(all_shortest_words({0}, {0}, {}))
        assert words == [()]

    def test_empty_language(self):
        transitions = {0: {"a": [0]}}
        assert list(all_shortest_words({0}, {9}, transitions)) == []

    def test_only_shortest_length_emitted(self):
        # Accepts a (length 1) and bb (length 2): only "a" is shortest.
        transitions = {0: {"a": [3], "b": [1]}, 1: {"b": [3]}}
        words = list(all_shortest_words({0}, {3}, transitions))
        assert words == [("a",)]

    def test_integer_symbols_sorted(self):
        transitions = {0: {7: [1], 2: [1]}}
        words = list(all_shortest_words({0}, {1}, transitions))
        assert words == [(2,), (7,)]

    def test_multiple_initial_states(self):
        transitions = {0: {"a": [2]}, 1: {"b": [2]}}
        words = list(all_shortest_words({0, 1}, {2}, transitions))
        assert words == [("a",), ("b",)]


class TestProperties:
    @given(small_nfas())
    @settings(max_examples=60, deadline=None)
    def test_matches_bruteforce(self, nfa):
        """Against exhaustive word enumeration up to the NFA's λ."""
        initial, final, transitions = _as_tables(nfa)
        got = list(all_shortest_words(initial, final, transitions))

        lam = nfa.shortest_accepted_length()
        if lam is None:
            assert got == []
            return
        # Brute force: all words over the alphabet of length λ.
        from itertools import product

        alphabet = sorted(nfa.alphabet())
        expected = [
            word
            for word in product(alphabet, repeat=lam)
            if nfa.accepts(list(word))
        ]
        assert got == expected  # Same set AND same (lex) order.

    @given(small_nfas())
    @settings(max_examples=40, deadline=None)
    def test_no_duplicates(self, nfa):
        initial, final, transitions = _as_tables(nfa)
        got = list(all_shortest_words(initial, final, transitions))
        assert len(set(got)) == len(got)
