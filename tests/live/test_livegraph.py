"""Overlay edge cases of :class:`repro.live.LiveGraph`.

The accessor contract itself is guarded by
``tests/graph/test_accessor_contract.py``; this module covers the
*stateful* corners the ISSUE calls out — tombstoned-then-readded
edges, multi-label edge label edits, never-compacted vs
just-compacted equivalence — plus batch atomicity, the change feed
and the standing-query footprint skip.
"""

from __future__ import annotations

import pytest

from repro.core.multi_target import MultiTargetShortestWalks
from repro.exceptions import CostError, GraphError, UnknownEdgeError
from repro.graph.builder import GraphBuilder
from repro.live import (
    AddEdge,
    AddVertex,
    LiveGraph,
    RemoveEdge,
    SetEdgeLabels,
    op_from_dict,
    op_to_dict,
)
from repro.query import rpq


def _chain() -> LiveGraph:
    b = GraphBuilder()
    b.add_edge("A", "B", ["h"])
    b.add_edge("B", "C", ["h"])
    b.add_edge("A", "C", ["s"])
    return LiveGraph(b.build())


def _answers(graph, expression: str, source, target):
    mt = MultiTargetShortestWalks(graph, rpq(expression).automaton, source)
    lam = mt.lam_for(target)
    if lam is None:
        return None, []
    return lam, [w.edges for w in mt.walks_to(target)]


class TestTombstoneReadd:
    def test_readd_gets_fresh_id_and_slot(self) -> None:
        live = _chain()
        live.remove_edge(0)
        assert not live.is_live(0)
        e = live.add_edge("A", "B", ["h"])
        assert e == 3  # Fresh id; the tombstone slot never recycles.
        assert live.is_live(e)
        # The tombstone keeps its In slot; the re-add appends a new one.
        assert live.in_edges(live.vertex_id("B")) == (0, 3)
        assert live.tgt_idx(3) == 1
        assert live.out_edges(live.vertex_id("A")) == (2, 3)

    def test_readd_restores_answers(self) -> None:
        live = _chain()
        lam0, _ = _answers(live, "h h", "A", "C")
        live.remove_edge(0)
        assert _answers(live, "h h", "A", "C") == (None, [])
        live.add_edge("A", "B", ["h"])
        lam, walks = _answers(live, "h h", "A", "C")
        assert lam == lam0 == 2
        assert walks == [(3, 1)]

    def test_remove_twice_rejected(self) -> None:
        live = _chain()
        live.remove_edge(0)
        with pytest.raises(GraphError):
            live.remove_edge(0)

    def test_remove_unknown_edge_rejected(self) -> None:
        live = _chain()
        with pytest.raises(UnknownEdgeError):
            live.remove_edge(99)

    def test_counts_track_tombstones(self) -> None:
        live = _chain()
        live.remove_edge(1)
        assert live.edge_count == 3  # Id space keeps the slot...
        assert live.live_edge_count == 2  # ...the live count drops.
        assert list(live.live_edges()) == [0, 2]
        assert live.stats()["tombstones"] == 1


class TestLabelEdits:
    def test_multi_label_edit_moves_buckets(self) -> None:
        live = _chain()
        a_h, a_s = live.label_id("h"), live.label_id("s")
        u = live.vertex_id("A")
        live.set_edge_labels(0, ["s", "night"])  # Was ["h"].
        assert live.out_by_label(u, a_h) == ()
        assert 0 in live.out_by_label(u, a_s)
        a_night = live.label_id("night")
        assert live.out_by_label(u, a_night) == (0,)
        assert live.labels(0) == tuple(sorted((a_s, a_night)))
        assert set(live.label_names_of(0)) == {"s", "night"}

    def test_edit_keeps_id_and_tgt_idx(self) -> None:
        live = _chain()
        ti = live.tgt_idx(0)
        live.set_edge_labels(0, ["h", "s", "night"])
        assert live.tgt_idx(0) == ti
        assert live.in_edges(live.tgt(0))[ti] == 0

    def test_edit_overlay_edge(self) -> None:
        live = _chain()
        e = live.add_edge("C", "A", ["x"])
        live.set_edge_labels(e, ["y"])
        assert live.label_names_of(e) == ("y",)
        c = live.vertex_id("C")
        assert live.out_by_label(c, live.label_id("y")) == (e,)
        assert live.out_by_label(c, live.label_id("x")) == ()

    def test_edit_changes_query_answers(self) -> None:
        live = _chain()
        live.set_edge_labels(2, ["h"])  # A->C joins the h-world.
        lam, walks = _answers(live, "h+", "A", "C")
        assert lam == 1 and walks == [(2,)]

    def test_edit_back_to_base_labels(self) -> None:
        live = _chain()
        live.set_edge_labels(0, ["s"])
        live.set_edge_labels(0, ["h"])  # Back to the base label set.
        u = live.vertex_id("A")
        assert live.out_by_label(u, live.label_id("h")) == (0,)
        assert live.out_by_label(u, live.label_id("s")) == (2,)

    def test_empty_label_set_rejected_atomically(self) -> None:
        live = _chain()
        with pytest.raises(GraphError):
            live.set_edge_labels(0, [])
        assert live.label_names_of(0) == ("h",)


class TestBatchAtomicity:
    def test_bad_op_leaves_graph_untouched(self) -> None:
        live = _chain()
        before = live.stats()
        with pytest.raises(GraphError):
            live.apply(
                [
                    AddEdge("A", "Z", ("h",)),
                    RemoveEdge(99),  # Invalid: the whole batch aborts.
                ]
            )
        assert live.stats() == before
        assert not live.has_vertex("Z")

    def test_bad_cost_rejected(self) -> None:
        live = _chain()
        with pytest.raises(CostError):
            live.apply([AddEdge("A", "B", ("h",), cost=0)])
        assert live.epoch == 0

    def test_remove_then_edit_same_edge_rejected(self) -> None:
        live = _chain()
        with pytest.raises(GraphError):
            live.apply([RemoveEdge(0), SetEdgeLabels(0, ("s",))])
        assert live.is_live(0)

    def test_batch_receipt_contents(self) -> None:
        live = _chain()
        batch = live.apply(
            [
                AddVertex("lonely"),
                AddEdge("C", "D", ("ferry",)),
                RemoveEdge(2),
                SetEdgeLabels(1, ("h", "night")),
            ]
        )
        assert batch.epoch == 1
        assert len(batch.added_vertices) == 2  # "lonely" and "D".
        assert batch.added_edges == (3,)
        assert batch.removed_edges == (2,)
        assert batch.relabeled_edges == (1,)
        assert batch.touched_labels == {"ferry", "s", "h", "night"}
        assert batch.new_labels == {"ferry", "night"}

    def test_ops_round_trip_wire_form(self) -> None:
        ops = [
            AddVertex("v"),
            AddEdge("a", "b", ("h", "s"), cost=3),
            RemoveEdge(7),
            SetEdgeLabels(2, ("x",)),
        ]
        for op in ops:
            assert op_from_dict(op_to_dict(op)) == op
        with pytest.raises(GraphError):
            op_from_dict({"op": "warp_edge", "edge": 1})
        with pytest.raises(GraphError):
            op_from_dict({"op": "add_edge", "src": "a", "tgt": "b"})


class TestCompactionEquivalence:
    """Never-compacted vs just-compacted: same answers, fresh ids."""

    def _mutate(self, live: LiveGraph) -> None:
        live.add_edge("C", "D", ["h"])
        live.add_edge("B", "D", ["s"])
        live.remove_edge(1)
        live.set_edge_labels(2, ["h"])

    def test_same_answers_before_and_after_compact(self) -> None:
        overlay = _chain()
        self._mutate(overlay)
        compacted = _chain()
        self._mutate(compacted)
        compacted.compact()

        def rendered(graph, walks):
            return [
                tuple(
                    (
                        graph.vertex_name(graph.src(e)),
                        graph.vertex_name(graph.tgt(e)),
                        graph.label_names_of(e),
                    )
                    for e in w
                )
                for w in walks
            ]

        for expression, s, t in (
            ("h+", "A", "D"),
            ("h h", "A", "D"),
            ("s", "B", "D"),
            ("h* s", "A", "D"),
        ):
            lam_o, walks_o = _answers(overlay, expression, s, t)
            lam_c, walks_c = _answers(compacted, expression, s, t)
            assert lam_o == lam_c, expression
            assert rendered(overlay, walks_o) == rendered(
                compacted, walks_c
            ), expression

    def test_compact_resets_overlay_bookkeeping(self) -> None:
        live = _chain()
        self._mutate(live)
        assert live.delta_ratio > 0
        live.compact()
        stats = live.stats()
        assert stats["overlay_edges"] == 0
        assert stats["tombstones"] == 0
        assert stats["label_overrides"] == 0
        assert stats["delta_ratio"] == 0.0
        assert live.compactions == 1
        # Edge ids are dense again.
        assert live.edge_count == live.live_edge_count

    def test_mutations_on_just_compacted_graph(self) -> None:
        live = _chain()
        self._mutate(live)
        live.compact()
        live.add_edge("D", "A", ["h"])
        live.remove_edge(0)
        lam, _walks = _answers(live, "h+", "C", "A")
        assert lam == 2  # C -h-> D -h-> A.

    def test_to_graph_does_not_mutate(self) -> None:
        live = _chain()
        self._mutate(live)
        ratio = live.delta_ratio
        frozen = live.to_graph()
        assert live.delta_ratio == ratio
        assert frozen.edge_count == live.live_edge_count


class TestChangeFeed:
    def test_subscribe_and_unsubscribe(self) -> None:
        live = _chain()
        seen = []
        unsubscribe = live.subscribe(seen.append)
        live.add_edge("A", "B", ["h"])
        assert len(seen) == 1 and seen[0].added_edges == (3,)
        unsubscribe()
        live.remove_edge(0)
        assert len(seen) == 1
        unsubscribe()  # Idempotent.

    def test_compact_notifies_with_compaction_receipt(self) -> None:
        live = _chain()
        seen = []
        live.subscribe(seen.append)
        live.add_edge("A", "B", ["h"])
        live.compact()
        assert len(seen) == 2
        assert not seen[0].compaction
        assert seen[1].compaction and seen[1].ops == ()
        assert seen[1].touched_labels == frozenset()

    def test_front_subscribers_run_first(self) -> None:
        live = _chain()
        order = []
        live.subscribe(lambda b: order.append("user"))
        live.subscribe(lambda b: order.append("infra"), front=True)
        live.add_edge("A", "B", ["h"])
        assert order == ["infra", "user"]

    def test_add_edge_returns_receipt_id(self) -> None:
        live = _chain()
        batch_id = live.add_edge("A", "B", ["h"])
        assert live.src(batch_id) == live.vertex_id("A")
        assert live.labels(batch_id) == (live.label_id("h"),)
