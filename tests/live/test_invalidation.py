"""Fine-grained cache invalidation through :meth:`Database.mutate`.

The contract under test: after a mutation batch, a cached artifact is
evicted **iff** its label footprint intersects the batch's labels —
plans only when the batch grows the label universe into the plan's
footprint (or the plan uses a wildcard), annotations whenever the
batch touches any label the query can fire on.  Everything else stays
warm, which is the cache-hit-rate claim of EXP-LIVE.
"""

from __future__ import annotations

import pytest

from repro.api import Database
from repro.exceptions import QueryError
from repro.graph.builder import GraphBuilder
from repro.live import LiveGraph, StandingQuery


def _graph():
    b = GraphBuilder()
    b.add_edge("A", "B", ["h"])
    b.add_edge("B", "C", ["h"])
    b.add_edge("A", "C", ["s"])
    b.add_edge("C", "D", ["s"])
    for i in range(6):  # Ballast so tiny batches stay below the
        b.add_edge(f"p{i}", f"p{i+1}", ["pad"])  # auto-compact threshold.
    return b.build()


def _db() -> Database:
    return Database(LiveGraph(_graph()))


def _run(db, expression, source, target):
    return db.query(expression).from_(source).to(target).run()


class TestAnnotationInvalidation:
    def test_unrelated_label_keeps_annotations_warm(self) -> None:
        db = _db()
        _run(db, "h+", "A", "C")
        _run(db, "s s", "A", "D")
        result = db.mutate(
            [{"op": "add_edge", "src": "D", "tgt": "A", "labels": ["x"]}]
        )
        assert result.evicted_annotations == 0
        assert result.evicted_plans == 0
        assert _run(db, "h+", "A", "C").stats["cached"] == {
            "plan": True, "annotation": True,
        }
        assert _run(db, "s s", "A", "D").stats["cached"] == {
            "plan": True, "annotation": True,
        }

    def test_touched_label_evicts_only_intersecting(self) -> None:
        db = _db()
        _run(db, "h+", "A", "C")
        _run(db, "s s", "A", "D")
        result = db.mutate(
            [{"op": "add_edge", "src": "A", "tgt": "C", "labels": ["h"]}]
        )
        assert result.evicted_annotations == 1
        assert result.evicted_plans == 0  # Plans survive edge writes.
        fresh = _run(db, "h+", "A", "C")
        assert fresh.stats["cached"] == {"plan": True, "annotation": False}
        assert fresh.lam == 1  # And sees the new edge.
        assert _run(db, "s s", "A", "D").stats["cached"]["annotation"]

    def test_remove_edge_evicts_by_its_labels(self) -> None:
        db = _db()
        assert _run(db, "h+", "A", "C").lam == 2
        _run(db, "s s", "A", "D")
        result = db.mutate([{"op": "remove_edge", "edge": 0}])
        assert result.evicted_annotations == 1
        assert _run(db, "h+", "A", "C").lam is None
        assert _run(db, "s s", "A", "D").stats["cached"]["annotation"]

    def test_label_edit_touches_old_and_new_sets(self) -> None:
        db = _db()
        _run(db, "h+", "A", "C")
        _run(db, "s s", "A", "D")
        _run(db, "pad+", "p0", "p3")
        result = db.mutate(
            [{"op": "set_edge_labels", "edge": 0, "labels": ["s"]}]
        )
        # h (old) and s (new) footprints both go; pad survives.
        assert result.evicted_annotations == 2
        assert _run(db, "pad+", "p0", "p3").stats["cached"]["annotation"]

    def test_wildcard_annotation_always_evicted(self) -> None:
        db = _db()
        r = db.query(".+").from_("A").to("C").run()
        assert r.lam == 1
        result = db.mutate(
            [{"op": "add_edge", "src": "A", "tgt": "C", "labels": ["zz"]}]
        )
        assert result.evicted_annotations >= 1
        assert len(db.query(".+").from_("A").to("C").run().all()) == 2


class TestPlanInvalidation:
    def test_new_label_evicts_mentioning_plan(self) -> None:
        db = _db()
        # "ferry" is not in the alphabet yet: the compiled plan drops it.
        assert _run(db, "ferry | h", "A", "B").lam == 1
        result = db.mutate(
            [{"op": "add_edge", "src": "A", "tgt": "B", "labels": ["ferry"]}]
        )
        assert result.evicted_plans == 1
        fresh = _run(db, "ferry | h", "A", "B")
        assert fresh.stats["cached"]["plan"] is False
        assert len(fresh.all()) == 2  # Both h and ferry edges now match.

    def test_new_label_spares_unrelated_plan(self) -> None:
        db = _db()
        _run(db, "h+", "A", "C")
        result = db.mutate(
            [{"op": "add_edge", "src": "A", "tgt": "B", "labels": ["ferry"]}]
        )
        assert result.evicted_plans == 0
        assert _run(db, "h+", "A", "C").stats["cached"]["plan"]

    def test_wildcard_plan_evicted_on_alphabet_growth(self) -> None:
        db = _db()
        _run(db, ".+", "A", "C")
        result = db.mutate(
            [{"op": "add_edge", "src": "C", "tgt": "A", "labels": ["new"]}]
        )
        assert result.evicted_plans == 1

    def test_existing_label_write_keeps_plan(self) -> None:
        db = _db()
        _run(db, "h+", "A", "C")
        result = db.mutate(
            [{"op": "add_edge", "src": "C", "tgt": "A", "labels": ["h"]}]
        )
        assert result.evicted_plans == 0
        assert _run(db, "h+", "A", "C").stats["cached"]["plan"]


class TestPromotionAndCompaction:
    def test_first_mutation_promotes_plain_graph(self) -> None:
        db = Database(_graph())
        _run(db, "h+", "A", "C")
        version = db.version("default")
        result = db.mutate(
            [{"op": "add_edge", "src": "C", "tgt": "A", "labels": ["x"]}]
        )
        assert result.promoted
        assert result.version == version + 1  # Full purge via bump.
        assert isinstance(db.live(), LiveGraph)
        # Even the unrelated-label query rebuilds once after promotion.
        assert _run(db, "h+", "A", "C").stats["cached"] == {
            "plan": False, "annotation": False,
        }

    def test_live_registration_needs_no_promotion(self) -> None:
        db = _db()
        result = db.mutate(
            [{"op": "add_edge", "src": "C", "tgt": "A", "labels": ["x"]}]
        )
        assert not result.promoted

    def test_live_accessor_rejects_plain_graph(self) -> None:
        db = Database(_graph())
        with pytest.raises(QueryError):
            db.live()

    def test_forced_compaction_bumps_version(self) -> None:
        db = _db()
        _run(db, "h+", "A", "C")
        version = db.version("default")
        result = db.mutate(
            [{"op": "add_edge", "src": "C", "tgt": "A", "labels": ["x"]}],
            compact=True,
        )
        assert result.compacted
        assert result.version == version + 1
        assert db.live().compactions == 1
        # Correctness after the renumbering purge.
        assert _run(db, "h+", "A", "C").lam == 2

    def test_auto_compaction_on_threshold(self) -> None:
        db = Database(LiveGraph(_graph(), compact_threshold=0.2))
        ops = [
            {"op": "add_edge", "src": "C", "tgt": "A", "labels": ["x"]}
        ] * 3
        result = db.mutate(ops)
        assert result.compacted
        assert db.live().delta_ratio == 0.0

    def test_compact_never_when_disabled(self) -> None:
        db = Database(LiveGraph(_graph(), compact_threshold=0.01))
        result = db.mutate(
            [{"op": "add_edge", "src": "C", "tgt": "A", "labels": ["x"]}],
            compact=False,
        )
        assert not result.compacted
        assert db.live().delta_ratio > 0

    def test_query_to_vertex_added_after_caching(self) -> None:
        """A cached annotation answers (no walk) for later vertices.

        Regression guard for the ``target_info`` bounds check: the
        cached h+ annotation predates vertex E, and the only edge into
        E carries a label h+ cannot fire on — the entry stays warm and
        must cleanly report "no matching walk" instead of indexing
        out of range.
        """
        db = _db()
        _run(db, "h+", "A", "C")
        db.mutate(
            [{"op": "add_edge", "src": "C", "tgt": "E", "labels": ["x"]}]
        )
        result = db.query("h+").from_("A").to("E").run()
        assert result.lam is None
        assert result.stats["cached"]["annotation"] is True

    def test_mutate_requires_ops_list(self) -> None:
        db = _db()
        with pytest.raises(Exception):
            db.mutate([{"op": "no_such_op"}])

    def test_compact_wire_aliases_and_rejection(self) -> None:
        db = _db()
        result = db.mutate(
            [{"op": "add_vertex", "name": "z"}], compact="always"
        )
        assert result.compacted
        result = db.mutate(
            [{"op": "add_vertex", "name": "z2"}], compact="never"
        )
        assert not result.compacted
        with pytest.raises(QueryError):
            db.mutate([{"op": "add_vertex", "name": "z3"}], compact=1)
        with pytest.raises(QueryError):
            db.mutate(
                [{"op": "add_vertex", "name": "z3"}], compact="later"
            )

    def test_unhashable_vertex_name_aborts_whole_batch(self) -> None:
        """Regression: a bad op mid-batch must not half-commit."""
        db = _db()
        live = db.live()
        before = live.stats()
        with pytest.raises(Exception) as excinfo:
            db.mutate(
                [
                    {"op": "add_edge", "src": "A", "tgt": "B",
                     "labels": ["h"]},
                    {"op": "add_vertex", "name": ["unhashable"]},
                ]
            )
        assert "hashable" in str(excinfo.value)
        assert live.stats() == before
        # Point reads and flat views still agree (no torn commit).
        a = live.vertex_id("A")
        assert live.out_edges(a) == live.out_array[a]

    def test_direct_compact_keeps_caches_coherent(self) -> None:
        """``db.live().compact()`` must purge like ``mutate`` does.

        Regression: a tombstone removed via an *unrelated* label keeps
        the h+ annotation warm (correct), but a later direct
        compaction renumbers edge ids — without the compaction
        receipt routing through the eviction subscriber, the retained
        annotation's TgtIdx cells would index the shrunken In-lists
        out of range.
        """
        db = _db()
        version = db.version("default")
        db.mutate(
            [{"op": "remove_edge", "edge": 3}],  # s-labeled C->D.
            compact=False,
        )
        warm = _run(db, "h+", "A", "C")
        assert warm.lam == 2
        db.live().compact()  # Direct call, not via mutate().
        assert db.version("default") == version + 1
        fresh = _run(db, "h+", "A", "C")
        assert fresh.lam == 2
        assert fresh.stats["cached"] == {"plan": False, "annotation": False}

    def test_standing_query_refreshes_on_direct_compact(self) -> None:
        db = _db()
        sq = StandingQuery(db, "h+", "A", "C")
        refreshes = sq.refreshes
        db.live().compact()
        assert sq.refreshes == refreshes + 1  # Rows re-rendered on new ids.
        assert sq.lam == 2


class TestStandingQueries:
    def test_footprint_skip_and_refresh(self) -> None:
        db = _db()
        events = []
        sq = StandingQuery(
            db, "h+", "A", "C", on_change=lambda s: events.append(s.lam)
        )
        assert sq.refreshes == 1 and sq.lam == 2
        db.mutate(
            [{"op": "add_edge", "src": "D", "tgt": "A", "labels": ["x"]}]
        )
        assert sq.skipped == 1 and sq.refreshes == 1
        db.mutate(
            [{"op": "add_edge", "src": "A", "tgt": "C", "labels": ["h"]}]
        )
        assert sq.refreshes == 2 and sq.lam == 1
        assert events == [2, 1]
        sq.close()
        db.mutate(
            [{"op": "add_edge", "src": "A", "tgt": "C", "labels": ["h"]}]
        )
        assert sq.refreshes == 2  # Detached.

    def test_standing_query_requires_live_graph(self) -> None:
        db = Database(_graph())
        with pytest.raises(QueryError):
            StandingQuery(db, "h+", "A", "C")

    def test_refresh_after_compaction_sees_coherent_cache(self) -> None:
        """Eviction must stay ahead of standing queries post-compact.

        A compaction re-registers the graph, which re-subscribes the
        database's eviction pass; it must re-enter the feed *ahead*
        of previously-registered standing queries (``front=True``),
        else their refresh would read the stale annotation entry.
        """
        db = _db()
        sq = StandingQuery(db, "h+", "A", "C")
        assert sq.lam == 2
        db.mutate(
            [{"op": "add_edge", "src": "D", "tgt": "A", "labels": ["x"]}],
            compact=True,  # Re-register → re-subscribe the evictor.
        )
        _run_db_warm = db.query("h+").from_("A").to("C").run()
        assert _run_db_warm.lam == 2  # Cache warm again post-compact.
        db.mutate(
            [{"op": "add_edge", "src": "A", "tgt": "C", "labels": ["h"]}]
        )
        assert sq.lam == 1  # Refresh saw the evicted (fresh) world.
        assert len(sq.rows) == 1


class TestHitRateContrast:
    """The headline numbers: warm vs version-bump invalidation."""

    def test_unrelated_batch_keeps_hit_rate(self) -> None:
        db = _db()
        mix = [("h+", "A", "C"), ("s s", "A", "D"), ("pad+", "p0", "p3")]
        for q in mix:
            _run(db, *q)
        db.mutate(
            [{"op": "add_edge", "src": "D", "tgt": "A", "labels": ["zz"]}]
        )
        before = db.cache_stats()["annotation_cache"]
        for q in mix:
            _run(db, *q)
        after = db.cache_stats()["annotation_cache"]
        window_hits = after["hits"] - before["hits"]
        window = (after["hits"] + after["misses"]) - (
            before["hits"] + before["misses"]
        )
        assert window_hits / window == 1.0  # 3/3 — nothing was evicted.

    def test_version_bump_drops_everything(self) -> None:
        db = _db()
        mix = [("h+", "A", "C"), ("s s", "A", "D"), ("pad+", "p0", "p3")]
        for q in mix:
            _run(db, *q)
        db.register("default", db.live())  # The old-world invalidation.
        before = db.cache_stats()["annotation_cache"]
        for q in mix:
            _run(db, *q)
        after = db.cache_stats()["annotation_cache"]
        window_hits = after["hits"] - before["hits"]
        assert window_hits == 0  # 0% — every entry was purged.
