"""Wire-form versioning and typed-error tests for mutation ops.

Satellite coverage for the durability PR: every op round-trips
exactly through its versioned wire form, the reader is tolerant of
*newer*-version payloads (unknown fields ignored) but strict at the
version it knows, and every malformed shape raises the typed
:class:`~repro.exceptions.InvalidDeltaError` — never a raw
``KeyError``/``TypeError`` that would leak as an "internal error".
"""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError, InvalidDeltaError
from repro.live.delta import (
    WIRE_VERSION,
    AddEdge,
    AddVertex,
    RemoveEdge,
    SetEdgeLabels,
    op_from_dict,
    op_to_dict,
    ops_from_dicts,
)


class TestRoundTrips:
    """Exact per-op round trips, with the ``"v"`` stamp on the wire."""

    @pytest.mark.parametrize(
        "op,wire",
        [
            (
                AddVertex("city99"),
                {"v": 1, "op": "add_vertex", "name": "city99"},
            ),
            (
                AddVertex(42),  # Non-string names ride the wire as-is.
                {"v": 1, "op": "add_vertex", "name": 42},
            ),
            (
                AddEdge("a", "b", ("x", "y")),
                {
                    "v": 1,
                    "op": "add_edge",
                    "src": "a",
                    "tgt": "b",
                    "labels": ["x", "y"],
                },
            ),
            (
                AddEdge("a", "b", ("x",), cost=12),
                {
                    "v": 1,
                    "op": "add_edge",
                    "src": "a",
                    "tgt": "b",
                    "labels": ["x"],
                    "cost": 12,
                },
            ),
            (
                RemoveEdge(17),
                {"v": 1, "op": "remove_edge", "edge": 17},
            ),
            (
                SetEdgeLabels(3, ("train", "night")),
                {
                    "v": 1,
                    "op": "set_edge_labels",
                    "edge": 3,
                    "labels": ["train", "night"],
                },
            ),
        ],
    )
    def test_exact_wire_form_and_back(self, op, wire) -> None:
        assert op_to_dict(op) == wire
        assert op_from_dict(wire) == op
        assert op_from_dict(op_to_dict(op)) == op

    def test_none_cost_is_omitted(self) -> None:
        assert "cost" not in op_to_dict(AddEdge("a", "b", ("x",)))

    def test_wire_version_constant(self) -> None:
        assert WIRE_VERSION == 1
        assert op_to_dict(AddVertex("a"))["v"] == WIRE_VERSION


class TestVersionTolerance:
    def test_missing_v_reads_as_current(self) -> None:
        # Pre-versioning writers produced payloads without "v".
        op = op_from_dict({"op": "remove_edge", "edge": 5})
        assert op == RemoveEdge(5)

    def test_newer_version_ignores_unknown_fields(self) -> None:
        op = op_from_dict(
            {
                "v": WIRE_VERSION + 1,
                "op": "add_edge",
                "src": "a",
                "tgt": "b",
                "labels": ["x"],
                "shard": 7,  # Future field: ignored, not rejected.
            }
        )
        assert op == AddEdge("a", "b", ("x",))

    def test_current_version_rejects_unknown_fields(self) -> None:
        with pytest.raises(InvalidDeltaError, match="unknown field"):
            op_from_dict(
                {"v": WIRE_VERSION, "op": "remove_edge", "edge": 1, "x": 2}
            )

    def test_unversioned_payload_rejects_unknown_fields(self) -> None:
        with pytest.raises(InvalidDeltaError, match="unknown field"):
            op_from_dict({"op": "remove_edge", "edge": 1, "typo": True})

    def test_bad_version_values(self) -> None:
        for v in (0, -1, "1", 1.5, True, None):
            with pytest.raises(InvalidDeltaError, match="'v'"):
                op_from_dict({"v": v, "op": "remove_edge", "edge": 1})


class TestMalformedPayloads:
    """Every malformed shape is the *typed* error, a GraphError."""

    def test_error_is_a_graph_error(self) -> None:
        assert issubclass(InvalidDeltaError, GraphError)

    @pytest.mark.parametrize(
        "payload",
        [
            "not a dict",
            ["op", "add_vertex"],
            42,
            None,
            {},
            {"op": "explode"},
            {"op": ["add_vertex"]},  # Unhashable kind via JSON list.
            {"op": None},
            {"op": "add_vertex"},  # Missing required field.
            {"op": "add_edge", "src": "a", "tgt": "b"},  # No labels.
            {"op": "add_edge", "src": "a", "tgt": "b", "labels": "xy"},
            {"op": "add_edge", "src": "a", "tgt": "b", "labels": [1]},
            {"op": "add_edge", "src": "a", "tgt": "b", "labels": ["x"],
             "cost": "12"},
            {"op": "add_edge", "src": "a", "tgt": "b", "labels": ["x"],
             "cost": True},
            {"op": "remove_edge"},
            {"op": "remove_edge", "edge": "17"},
            {"op": "remove_edge", "edge": True},
            {"op": "remove_edge", "edge": 1.0},
            {"op": "set_edge_labels", "edge": 1},
            {"op": "set_edge_labels", "labels": ["x"]},
        ],
    )
    def test_raises_typed_error_only(self, payload) -> None:
        with pytest.raises(InvalidDeltaError):
            op_from_dict(payload)

    def test_sequence_guard(self) -> None:
        with pytest.raises(InvalidDeltaError, match="sequence"):
            ops_from_dicts({"op": "add_vertex", "name": "a"})

    def test_sequence_round_trip(self) -> None:
        ops = (AddVertex("a"), AddEdge("a", "b", ("x",)), RemoveEdge(0))
        assert ops_from_dicts([op_to_dict(op) for op in ops]) == ops
