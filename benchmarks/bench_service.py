"""EXP-SERVICE — batched QueryService throughput: cached vs cold.

The serving claim behind the ``repro.service`` subsystem: on a
repeated-query workload, the two-level cache (plan + saturated
annotation, see :mod:`repro.service`) amortizes the compile/Annotate/
Trim pipeline across requests, so batch throughput beats cold
per-request execution by ≥2× (the ISSUE acceptance bar) while serving
the identical answer pages.

Workload: the transport network (hub-heavy, 3 labels), Q distinct
query texts × S sources × T targets, visited R times — a plan-cache
hit rate of (1 - 1/R) and an annotation hit rate of (1 - 1/(R·T)),
mimicking a production mix where a dashboard repeats a small set of
parameterized queries against a slowly changing graph.

Both sides run through the *same* ``QueryService.execute_batch`` code
path and thread pool; the cold side merely has both caches disabled
(capacity 0), which drops it to the ordinary single-pair engine per
request — i.e. exactly what a non-caching server would do.

When ``BENCH_SERVICE_JSON`` names a file, the measured rows are dumped
there as JSON — that is how ``BENCH_service.json`` at the repo root is
produced.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from typing import Dict, List

from repro.service import QueryRequest, QueryService
from repro.workloads.transport import TRANSPORT_QUERIES, transport_network

#: The ISSUE's acceptance bar for the repeated-query batch.
SPEEDUP_TARGET = 2.0
#: Minimum plan-cache hit rate the workload must reach (ISSUE bar).
HIT_RATE_TARGET = 0.5

#: Wall-clock ratios are hardware-sensitive; CI sets
#: BENCH_SERVICE_STRICT=0 to keep the suite report-only on shared
#: runners (the measured margin is far above 2×, but a noisy neighbor
#: could squeeze one timed half).
STRICT = os.environ.get("BENCH_SERVICE_STRICT", "1") != "0"

_QUERIES = [
    TRANSPORT_QUERIES["ground_only"],
    TRANSPORT_QUERIES["fly_then_ground"],
    TRANSPORT_QUERIES["no_bus"],
    TRANSPORT_QUERIES["one_flight_max"],
]


def _workload(graph, repeats: int) -> List[QueryRequest]:
    """Q queries × S sources × T targets, the whole block R times."""
    sources = ["city0", "city1", "city2"]
    targets = [f"city{10 * i}" for i in range(1, 7)]
    block = [
        QueryRequest(query, source, target, limit=20)
        for query in _QUERIES
        for source in sources
        for target in targets
    ]
    return block * repeats


def _run_batch(service: QueryService, requests) -> List:
    responses = service.execute_batch(requests)
    bad = [r for r in responses if r.status == "error"]
    assert not bad, f"benchmark requests failed: {bad[0].error}"
    return responses


def _median_batch_seconds(make_service, requests, repeat: int = 3):
    """Median wall-clock of the batch on a *fresh* service per run."""
    times = []
    service = None
    for _ in range(repeat):
        service = make_service()
        t0 = time.perf_counter()
        responses = _run_batch(service, requests)
        times.append(time.perf_counter() - t0)
    return statistics.median(times), service, responses


def test_service_throughput_cached_vs_cold(benchmark, print_table):
    graph = transport_network(n_cities=96, hub_fraction=0.7, seed=7)
    graph.warm_indexes()  # Both sides share the prebuilt CSR indexes.
    repeats = 4
    requests = _workload(graph, repeats)

    def cold_service() -> QueryService:
        service = QueryService(
            plan_cache_size=0, annotation_cache_size=0, max_workers=4
        )
        service.register_graph("transport", graph, warm=False)
        return service

    def warm_service() -> QueryService:
        service = QueryService(max_workers=4)
        service.register_graph("transport", graph, warm=False)
        return service

    cold_s, _, cold_responses = _median_batch_seconds(cold_service, requests)
    warm_s, warm, warm_responses = _median_batch_seconds(
        warm_service, requests
    )

    # Same answers on both sides, page for page.
    for cold_r, warm_r in zip(cold_responses, warm_responses):
        assert cold_r.lam == warm_r.lam
        assert [w["edges"] for w in cold_r.walks] == [
            w["edges"] for w in warm_r.walks
        ]

    stats = warm.stats()
    plan_hit_rate = stats["plan_cache"]["hit_rate"]
    ann_hit_rate = stats["annotation_cache"]["hit_rate"]
    speedup = cold_s / warm_s if warm_s else float("inf")
    n = len(requests)

    rows: List[Dict] = [
        {
            "workload": f"transport {len(_QUERIES)}q x {n // repeats}"
            f" pairs x{repeats}",
            "requests": n,
            "cold_s": round(cold_s, 4),
            "warm_s": round(warm_s, 4),
            "cold_rps": round(n / cold_s, 1),
            "warm_rps": round(n / warm_s, 1),
            "speedup": round(speedup, 2),
            "plan_hit_rate": round(plan_hit_rate, 4),
            "annotation_hit_rate": round(ann_hit_rate, 4),
        }
    ]
    print_table(
        "EXP-SERVICE: batched QueryService, two-level cache vs cold "
        "per-request execution (median of 3 batches)",
        ["workload", "requests", "cold", "warm", "cold req/s",
         "warm req/s", "speedup", "plan hits", "annot hits"],
        [
            [
                r["workload"],
                r["requests"],
                f"{r['cold_s'] * 1e3:.0f} ms",
                f"{r['warm_s'] * 1e3:.0f} ms",
                r["cold_rps"],
                r["warm_rps"],
                f"{r['speedup']:.1f}x",
                f"{r['plan_hit_rate']:.0%}",
                f"{r['annotation_hit_rate']:.0%}",
            ]
            for r in rows
        ],
    )

    out = os.environ.get("BENCH_SERVICE_JSON")
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "experiment": "EXP-SERVICE",
                    "speedup_target": SPEEDUP_TARGET,
                    "hit_rate_target": HIT_RATE_TARGET,
                    "rows": rows,
                },
                fh,
                indent=2,
            )
            fh.write("\n")

    # One representative pytest-benchmark record (the warm batch).
    benchmark.pedantic(
        lambda: _run_batch(warm_service(), requests), rounds=3, iterations=1
    )

    # The hit rates are deterministic properties of the workload shape,
    # not of the hardware — always asserted.
    assert plan_hit_rate >= HIT_RATE_TARGET, plan_hit_rate
    assert ann_hit_rate >= HIT_RATE_TARGET, ann_hit_rate
    if STRICT:
        assert speedup >= SPEEDUP_TARGET, (
            f"cached service speedup {speedup:.2f}x below the "
            f"{SPEEDUP_TARGET}x target"
        )


def test_pagination_is_cheaper_than_recomputation(benchmark, print_table):
    """Paged access via next_cursor beats re-running full queries —
    the memoryless seek makes page k cost O(page), not O(k·page)."""
    from repro.workloads.worstcase import diamond_chain

    graph, _, source, target = diamond_chain(12, parallel=2)
    service = QueryService(max_workers=1)
    service.register_graph("diamond", graph)
    query = "a*"  # 2**12 = 4096 distinct shortest walks.

    # Warm the caches once.
    service.execute(QueryRequest(query, source, target, limit=1))

    t0 = time.perf_counter()
    pages = 0
    cursor = None
    while pages < 40:
        response = service.execute(
            QueryRequest(query, source, target, limit=5, cursor=cursor)
        )
        assert response.status == "ok"
        pages += 1
        cursor = response.next_cursor
        if cursor is None:
            break
    paged_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    full = service.execute(
        QueryRequest(query, source, target, limit=5 * pages)
    )
    full_s = time.perf_counter() - t0
    assert full.status == "ok"
    assert pages == 40 and len(full.walks) == 200

    print_table(
        "EXP-SERVICE (b): cursor pagination vs one-shot enumeration",
        ["access pattern", "outputs", "time"],
        [
            [f"{pages} pages of 5 (cursor seek)", 5 * pages,
             f"{paged_s * 1e3:.2f} ms"],
            [f"one shot limit={5 * pages}", 5 * pages,
             f"{full_s * 1e3:.2f} ms"],
        ],
    )
    # Sanity only (no hard ratio): paging must not be catastrophically
    # worse than one shot — it would be with O(k) restart per page.
    assert paged_s < 50 * max(full_s, 1e-4)

    benchmark.pedantic(
        lambda: service.execute(QueryRequest(query, source, target, limit=5)),
        rounds=3,
        iterations=1,
    )
