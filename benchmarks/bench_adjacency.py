"""EXP-ADJ — label-indexed CSR product-BFS vs the edge-major reference.

The ``Annotate`` hot path is the whole O(|D| × |A|) preprocessing
bound; this suite quantifies what the label-indexed CSR adjacency
(:attr:`repro.graph.database.Graph.out_csr`) buys over the retained
edge-major traversal on label-rich inputs:

* the transport workload (``ground_only`` policy on a hub-heavy
  network: the many never-matching ``flight`` edges cost the reference
  a Δ probe each, the CSR traversal never touches them), BFS and
  Dijkstra variants;
* the ``label_soup`` worst case (every edge carries many labels, few
  fire).

Each row reports the median of several timed runs; the assertions hold
the indexed path to the ISSUE's ≥3× target on the label-rich rows.
The CSR index is warmed before timing: it is built once per database
(O(|D|), amortized over every query against it) and the reference
traversal does not use it.

When the environment variable ``BENCH_ANNOTATE_JSON`` names a file,
the measured rows are also dumped there as JSON — that is how
``BENCH_annotate.json`` at the repo root is produced.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from typing import Callable, List

from repro.core.annotate import annotate, annotate_reference
from repro.core.cheapest import cheapest_annotate, cheapest_annotate_reference
from repro.core.compile import compile_query
from repro.query import rpq
from repro.workloads.transport import (
    TRANSPORT_QUERIES,
    antipodal_pair,
    transport_network,
)
from repro.workloads.worstcase import label_soup

#: The label-rich rows the ≥3× acceptance bar applies to.
SPEEDUP_TARGET = 3.0

#: Wall-clock ratios are hardware-sensitive; CI sets
#: BENCH_ADJ_STRICT=0 to keep the suite report-only on shared runners
#: (measured margins are 5–11×, but a noisy neighbor during one timed
#: half could squeeze a ratio below the bar and fail an unrelated PR).
STRICT = os.environ.get("BENCH_ADJ_STRICT", "1") != "0"


def _median_time(fn: Callable[[], object], repeat: int = 5) -> float:
    times = []
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def _measure(rows: List[list], name: str, graph, nfa, s, t, cheapest=False):
    cq = compile_query(graph, nfa)
    graph.out_csr  # Warm the one-per-database index outside the timing.
    graph.out_labels_array
    if cheapest:
        indexed = lambda: cheapest_annotate(cq, s, t, saturate=True)
        reference = lambda: cheapest_annotate_reference(
            cq, s, t, saturate=True
        )
    else:
        indexed = lambda: annotate(cq, s, saturate=True)
        reference = lambda: annotate_reference(cq, s, saturate=True)
    ref_s = _median_time(reference)
    idx_s = _median_time(indexed)
    speedup = ref_s / idx_s if idx_s else float("inf")
    rows.append(
        {
            "workload": name,
            "vertices": graph.vertex_count,
            "edges": graph.edge_count,
            "labels": graph.label_count,
            "reference_ms": round(ref_s * 1e3, 3),
            "indexed_ms": round(idx_s * 1e3, 3),
            "speedup": round(speedup, 2),
        }
    )
    return speedup


def test_annotate_indexed_vs_reference(benchmark, print_table):
    rows: List[dict] = []

    # Transport: hub-heavy network, ground-only policy — the flight
    # clique is pure noise for the query.
    net = transport_network(n_cities=240, hub_fraction=0.8, seed=3)
    s, t = (net.vertex_id(x) for x in antipodal_pair(net))
    ground = rpq(TRANSPORT_QUERIES["ground_only"]).automaton
    transport_speedup = _measure(
        rows, "transport/ground_only (BFS)", net, ground, s, t
    )
    transport_dijkstra = _measure(
        rows, "transport/ground_only (Dijkstra)", net, ground, s, t,
        cheapest=True,
    )
    # Contrast row, not asserted: no_bus also fires on flight, so the
    # clique is *matching* work for both traversals and the index can
    # only win on the bus edges.
    no_bus = rpq(TRANSPORT_QUERIES["no_bus"]).automaton
    _measure(rows, "transport/no_bus (BFS)", net, no_bus, s, t)

    # Worst case: many labels per edge, one fires.
    graph, nfa, sn, tn = label_soup(
        k=400, parallel=2, extra_labels=64, noise_out=48
    )
    ws, wt = graph.vertex_id(sn), graph.vertex_id(tn)
    soup_speedup = _measure(
        rows, "worstcase/label_soup (BFS)", graph, nfa, ws, wt
    )
    soup_dijkstra = _measure(
        rows, "worstcase/label_soup (Dijkstra)", graph, nfa, ws, wt,
        cheapest=True,
    )

    print_table(
        "EXP-ADJ: label-indexed CSR Annotate vs edge-major reference "
        "(median of 5, saturating runs)",
        ["workload", "|V|", "|E|", "|Σ|", "reference", "indexed", "speedup"],
        [
            [
                r["workload"],
                r["vertices"],
                r["edges"],
                r["labels"],
                f"{r['reference_ms']:.2f} ms",
                f"{r['indexed_ms']:.2f} ms",
                f"{r['speedup']:.1f}x",
            ]
            for r in rows
        ],
    )

    out = os.environ.get("BENCH_ANNOTATE_JSON")
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "experiment": "EXP-ADJ",
                    "speedup_target": SPEEDUP_TARGET,
                    "rows": rows,
                },
                fh,
                indent=2,
            )
            fh.write("\n")

    # One representative pytest-benchmark record (the transport BFS).
    cq = compile_query(net, ground)
    benchmark.pedantic(
        lambda: annotate(cq, s, saturate=True), rounds=3, iterations=1
    )

    if STRICT:
        for label, speedup in (
            ("transport BFS", transport_speedup),
            ("transport Dijkstra", transport_dijkstra),
            ("label_soup BFS", soup_speedup),
            ("label_soup Dijkstra", soup_dijkstra),
        ):
            assert speedup >= SPEEDUP_TARGET, (
                f"{label} speedup {speedup:.2f}x "
                f"below the {SPEEDUP_TARGET}x target"
            )


def test_csr_build_is_amortized(benchmark, print_table):
    """The index build is O(|D|) once; queries reuse it."""
    net = transport_network(n_cities=240, hub_fraction=0.8, seed=3)
    build = _median_time(lambda: net._build_csr(net.src_array), repeat=5)
    s, _ = (net.vertex_id(x) for x in antipodal_pair(net))
    cq = compile_query(net, rpq(TRANSPORT_QUERIES["ground_only"]).automaton)
    net.out_csr
    net.out_labels_array
    query = _median_time(lambda: annotate(cq, s, saturate=True), repeat=5)
    print_table(
        "EXP-ADJ (b): one-off CSR build cost vs per-query annotate",
        ["stage", "median"],
        [
            ["build out-CSR", f"{build * 1e3:.2f} ms"],
            ["annotate (indexed)", f"{query * 1e3:.2f} ms"],
        ],
    )
    benchmark.pedantic(
        lambda: net._build_csr(net.src_array), rounds=3, iterations=1
    )
