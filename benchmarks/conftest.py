"""Shared helpers for the benchmark suites.

Run with::

    pytest benchmarks/ --benchmark-only -s

Each suite prints the table recorded in ``EXPERIMENTS.md`` (the ``-s``
flag shows them) and asserts the *shape* of the paper's claim — slopes,
independence, blowups — never absolute timings.
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    # Benchmarks double as shape tests; keep pytest-benchmark quiet-ish.
    config.option.benchmark_disable_gc = True


@pytest.fixture(scope="session")
def print_table():
    """Print a table with a title, flush-through under ``-s``."""
    from repro.bench import format_table

    def _print(title: str, headers, rows) -> None:
        print(f"\n## {title}")
        print(format_table(headers, rows))

    return _print
