"""EXP-FACADE — the fluent ``repro.api`` path: cached vs cold.

The PR-3 claim: routing *interactive* queries through the
``Database``/``Query`` façade gives them the same plan/annotation
reuse the JSONL batch service measured, with the fluent-builder
overhead staying in the noise.  The workload repeats a small set of
parameterized pair and ``to_all`` queries against the transport
network — the façade-shaped equivalent of the EXP-SERVICE mix — once
on a warm :class:`~repro.api.Database` and once on a cold one (both
caches at capacity 0).

The cache hit rates are deterministic and always asserted; the
wall-clock ratio is asserted only under ``BENCH_FACADE_STRICT=1``
(shared CI runners are too noisy for hard ratio bars).
"""

from __future__ import annotations

import os
import statistics
import time
from typing import Dict, List

from repro.api import Database
from repro.workloads.transport import TRANSPORT_QUERIES, transport_network

SPEEDUP_TARGET = 2.0
HIT_RATE_TARGET = 0.5
STRICT = os.environ.get("BENCH_FACADE_STRICT", "0") == "1"

_QUERIES = [
    TRANSPORT_QUERIES["ground_only"],
    TRANSPORT_QUERIES["fly_then_ground"],
    TRANSPORT_QUERIES["no_bus"],
]


def _run_workload(db: Database, repeats: int) -> List:
    """Q queries × pairs (+ one fan-out), the whole block R times."""
    sources = ["city0", "city1", "city2"]
    targets = [f"city{10 * i}" for i in range(1, 5)]
    pages = []
    for _ in range(repeats):
        for expression in _QUERIES:
            for source in sources:
                for target in targets:
                    rs = (
                        db.query(expression)
                        .from_(source).to(target)
                        .limit(20)
                        .run()
                    )
                    pages.append([row.walk.edges for row in rs])
        # One bucketed shape per block so the fan-out path is timed too.
        fan = (
            db.query(_QUERIES[0]).from_("city0").to_all().limit(50).run()
        )
        pages.append([row.walk.edges for row in fan])
    return pages


def _median_seconds(make_db, repeats: int, runs: int = 3):
    times, db, pages = [], None, None
    for _ in range(runs):
        db = make_db()
        t0 = time.perf_counter()
        pages = _run_workload(db, repeats)
        times.append(time.perf_counter() - t0)
    return statistics.median(times), db, pages


def test_facade_repeat_queries_hit_caches(benchmark, print_table):
    graph = transport_network(n_cities=96, hub_fraction=0.7, seed=7)
    graph.warm_indexes()
    repeats = 4

    cold_s, _, cold_pages = _median_seconds(
        lambda: Database(
            graph, plan_cache_size=0, annotation_cache_size=0, warm=False
        ),
        repeats,
    )
    warm_s, warm, warm_pages = _median_seconds(
        lambda: Database(graph, warm=False), repeats
    )

    # Identical pages on both sides.
    assert cold_pages == warm_pages

    stats = warm.stats()
    plan_hit_rate = stats["plan_cache"]["hit_rate"]
    ann_hit_rate = stats["annotation_cache"]["hit_rate"]
    speedup = cold_s / warm_s if warm_s else float("inf")

    rows: List[Dict] = [
        {
            "path": "facade pair+to_all",
            "queries": len(warm_pages),
            "cold_s": round(cold_s, 4),
            "warm_s": round(warm_s, 4),
            "speedup": f"{speedup:.1f}x",
            "plan_hits": f"{plan_hit_rate:.0%}",
            "ann_hits": f"{ann_hit_rate:.0%}",
        }
    ]
    print_table(
        "EXP-FACADE: fluent Database path, cached vs cold "
        "(median of 3)",
        list(rows[0].keys()),
        [list(r.values()) for r in rows],
    )
    benchmark.pedantic(
        lambda: _run_workload(warm, 1), iterations=1, rounds=3
    )

    # The hit rates are a property of the workload mix — always on.
    assert plan_hit_rate >= HIT_RATE_TARGET, plan_hit_rate
    assert ann_hit_rate >= HIT_RATE_TARGET, ann_hit_rate
    if STRICT:
        assert speedup >= SPEEDUP_TARGET, (
            f"façade cached speedup {speedup:.2f}x below "
            f"{SPEEDUP_TARGET}x"
        )
