"""EXP-EXT — the Section 5.3 extensions.

* **one-to-many**: one saturating preprocessing + per-target
  enumerations vs an independent engine per target;
* **cheapest walks**: Dijkstra annotation on costed graphs — answers
  verified against the BFS engine on unit costs, timings reported on
  random costs;
* **multiplicities**: per-output run counting must not change the
  delay's order of magnitude.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.automata.nfa import NFA
from repro.bench import measure_delays
from repro.core.cheapest import DistinctCheapestWalks
from repro.core.engine import DistinctShortestWalks
from repro.core.multi_target import MultiTargetShortestWalks
from repro.graph.builder import GraphBuilder
from repro.workloads.fraud import fraud_network
from repro.workloads.worstcase import diamond_chain


def _fraud_query():
    return "(h | w | c)* s (h | w | c | s)*"


def test_multi_target_amortizes_preprocessing(benchmark, print_table):
    graph = fraud_network(400, 2_400, seed=3)
    query = _fraud_query()

    started = time.perf_counter()
    mt = MultiTargetShortestWalks(graph, query, "acct0")
    mt.preprocess()
    shared_preprocessing = time.perf_counter() - started
    targets = mt.reached_targets()[:40]

    started = time.perf_counter()
    multi_counts = {t: sum(1 for _ in mt.walks_to(t)) for t in targets}
    multi_total = time.perf_counter() - started + shared_preprocessing

    started = time.perf_counter()
    single_counts = {}
    for t in targets:
        engine = DistinctShortestWalks(graph, query, "acct0", t)
        single_counts[t] = engine.count()
    single_total = time.perf_counter() - started

    assert multi_counts == single_counts
    print_table(
        "EXP-EXT-MT: 40 targets, shared vs per-target preprocessing",
        ["strategy", "total time", "answers"],
        [
            [
                "multi-target (one Annotate)",
                f"{multi_total * 1e3:.1f} ms",
                sum(multi_counts.values()),
            ],
            [
                "independent engines",
                f"{single_total * 1e3:.1f} ms",
                sum(single_counts.values()),
            ],
        ],
    )
    benchmark.pedantic(
        lambda: sum(1 for _ in mt.walks_to(targets[0])),
        rounds=2,
        iterations=1,
    )
    assert multi_total < single_total, "shared preprocessing must win"


def test_cheapest_walks_random_costs(benchmark, print_table):
    rng = random.Random(17)
    builder = GraphBuilder()
    n = 300
    names = [f"v{i}" for i in range(n)]
    builder.add_vertices(names)
    for _ in range(1_800):
        builder.add_edge(
            rng.choice(names),
            rng.choice(names),
            [rng.choice(["a", "b"])],
            cost=rng.randint(1, 9),
        )
    # Ensure a costed route exists.
    previous = "v0"
    for i in range(4):
        builder.add_edge(previous, f"w{i}", ["a"], cost=2)
        previous = f"w{i}"
    builder.add_edge(previous, names[-1], ["a"], cost=2)
    graph = builder.build()

    nfa = NFA(1)
    nfa.add_transition(0, "a", 0)
    nfa.add_transition(0, "b", 0)
    nfa.set_initial(0)
    nfa.set_final(0)

    started = time.perf_counter()
    engine = DistinctCheapestWalks(graph, nfa, "v0", names[-1])
    walks = list(engine.enumerate())
    elapsed = time.perf_counter() - started

    assert walks
    assert all(w.cost() == engine.cheapest_cost for w in walks)
    benchmark.pedantic(
        lambda: list(
            DistinctCheapestWalks(graph, nfa, "v0", names[-1]).enumerate()
        ),
        rounds=2,
        iterations=1,
    )
    print_table(
        "EXP-EXT-CHEAP: distinct cheapest walks (Dijkstra annotation)",
        ["metric", "value"],
        [
            ["cheapest cost", engine.cheapest_cost],
            ["answers", len(walks)],
            ["edges of answers", walks[0].length],
            ["end-to-end time", f"{elapsed * 1e3:.1f} ms"],
        ],
    )


def test_multiplicity_overhead(benchmark, print_table):
    graph, nfa, s, t = diamond_chain(9, parallel=2, labels=("a", "b"))
    from repro.workloads.worstcase import wide_nfa

    query = wide_nfa(3, ("a", "b"))
    engine = DistinctShortestWalks(graph, query, s, t)
    engine.preprocess()

    plain = measure_delays(engine.enumerate)
    with_counts = measure_delays(engine.enumerate_with_multiplicity)
    assert plain.outputs == with_counts.outputs == 2 ** 9

    benchmark.pedantic(
        lambda: sum(1 for _ in engine.enumerate_with_multiplicity()),
        rounds=2,
        iterations=1,
    )
    ratio = with_counts.mean_delay_s / max(plain.mean_delay_s, 1e-9)
    print_table(
        "EXP-EXT-MULT: multiplicity counting overhead (512 answers)",
        ["mode", "mean delay", "max delay"],
        [
            [
                "walks only",
                f"{plain.mean_delay_s * 1e6:.1f} µs",
                f"{plain.max_delay_s * 1e6:.1f} µs",
            ],
            [
                "with multiplicities",
                f"{with_counts.mean_delay_s * 1e6:.1f} µs",
                f"{with_counts.max_delay_s * 1e6:.1f} µs",
            ],
            ["ratio", f"{ratio:.2f}x", ""],
        ],
    )
    assert ratio < 25, "multiplicity counting changed the delay's order"


@pytest.mark.parametrize("extension", ["multi_target", "cheapest"])
def test_extensions_benchmark(benchmark, extension):
    if extension == "multi_target":
        graph = fraud_network(150, 900, seed=9)

        def run():
            mt = MultiTargetShortestWalks(graph, _fraud_query(), "acct0")
            return len(mt.reached_targets())

        benchmark(run)
    else:
        rng = random.Random(31)
        builder = GraphBuilder()
        names = [f"v{i}" for i in range(150)]
        builder.add_vertices(names)
        for _ in range(900):
            builder.add_edge(
                rng.choice(names),
                rng.choice(names),
                ["a"],
                cost=rng.randint(1, 5),
            )
        builder.add_edge("v0", "v149", ["a"], cost=50)
        graph = builder.build()
        nfa = NFA(1)
        nfa.add_transition(0, "a", 0)
        nfa.set_initial(0)
        nfa.set_final(0)

        def run():
            return DistinctCheapestWalks(graph, nfa, "v0", "v149").cheapest_cost

        benchmark(run)
