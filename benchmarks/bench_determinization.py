"""EXP-DETBLOWUP — why the algorithm must handle NFAs directly.

Section 1: a user's regular expression "does not translate to a
deterministic automaton without a possible exponential increase in
size".  The classic witness family is

    R_n  =  (a|b)* a (a|b){n}            ("n-th letter from the end is a")

whose NFA is linear in ``n`` while its minimal DFA needs ``2**(n+1)``
states.  This suite certifies the blowup with exact state counts and
shows what it costs operationally: the engine's preprocessing over the
NFA stays flat while a determinize-first pipeline grows exponentially.
"""

from __future__ import annotations

import time

from repro.automata import (
    determinize,
    glushkov_nfa,
    minimize,
    parse_rpq,
    thompson_nfa,
)
from repro.core.engine import DistinctShortestWalks
from repro.graph.generators import chain

_NS = (4, 6, 8, 10)


def _expression(n: int) -> str:
    return f"(a|b)* a (a|b){{{n}}}"


def test_state_blowup_is_exponential(benchmark, print_table):
    rows = []
    dfa_sizes = []
    for n in _NS:
        ast = parse_rpq(_expression(n))
        thompson = thompson_nfa(ast)
        glushkov = glushkov_nfa(ast)
        dfa = minimize(thompson)
        rows.append(
            [
                n,
                thompson.n_states,
                glushkov.n_states,
                determinize(glushkov).n_states,
                dfa.n_states,
            ]
        )
        dfa_sizes.append(dfa.n_states)
        # The textbook bound, exactly.
        assert dfa.n_states == 2 ** (n + 1)
    benchmark.pedantic(
        lambda: minimize(thompson_nfa(parse_rpq(_expression(8)))),
        rounds=2,
        iterations=1,
    )
    print_table(
        "EXP-DETBLOWUP (a): NFA vs DFA sizes for (a|b)* a (a|b)^n",
        ["n", "|Q| Thompson", "|Q| Glushkov", "|Q| subset DFA", "|Q| min DFA"],
        rows,
    )
    assert dfa_sizes[-1] == 2 ** (_NS[-1] + 1)


def test_nfa_engine_avoids_blowup(benchmark, print_table):
    """Preprocessing with the NFA stays flat; with the DFA it explodes."""
    graph = chain(24, labels=("a", "b"), parallel=1)
    rows = []
    nfa_times, dfa_times = [], []
    for n in _NS:
        ast = parse_rpq(_expression(n))
        nfa = thompson_nfa(ast)

        t0 = time.perf_counter()
        engine = DistinctShortestWalks(graph, nfa, "v0", "v24")
        engine.preprocess()
        t1 = time.perf_counter()
        nfa_times.append(t1 - t0)

        dfa = determinize(glushkov_nfa(ast))
        t2 = time.perf_counter()
        dfa_engine = DistinctShortestWalks(graph, dfa, "v0", "v24")
        dfa_engine.preprocess()
        t3 = time.perf_counter()
        dfa_times.append(t3 - t2)

        assert engine.lam == dfa_engine.lam
        rows.append(
            [
                n,
                nfa.n_states,
                dfa.n_states,
                f"{(t1 - t0) * 1e3:.2f} ms",
                f"{(t3 - t2) * 1e3:.2f} ms",
            ]
        )
    benchmark.pedantic(lambda: engine.preprocess(), rounds=2, iterations=1)
    print_table(
        "EXP-DETBLOWUP (b): preprocessing, NFA engine vs determinize-first",
        ["n", "|Q| NFA", "|Q| DFA", "NFA preprocess", "DFA preprocess"],
        rows,
    )
    # The DFA pipeline must degrade relative to the NFA pipeline as n
    # grows (ratio at n=10 ≫ ratio at n=4).
    first_ratio = dfa_times[0] / nfa_times[0]
    last_ratio = dfa_times[-1] / nfa_times[-1]
    assert last_ratio > 4 * first_ratio, (first_ratio, last_ratio)
