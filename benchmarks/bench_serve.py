"""EXP-CONC — multi-process serving tier vs single-process service.

The serving claim behind :mod:`repro.serve`: a pool of worker
processes mapping one shared-memory packed graph sustains ≥2× the
request throughput of a single-process :class:`QueryService` at 4+
workers on a CPU-bound repeated-query mix (the floor tracked by
``check_floors.py``), while answering byte-identically.

Where the 2× comes from — and what this bench holds fixed
---------------------------------------------------------
Every process (the single-process baseline *and* each worker) gets the
same per-process annotation-LRU budget.  The workload's working set —
W distinct (query, source) pairs visited cyclically — is chosen larger
than one process's budget, the production shape where a dashboard's
parameter space outgrows one cache: an LRU under a cyclic scan of
W > capacity evicts every entry before its next use, so the
single-process side rebuilds the saturated annotation on *every*
request.  The serving tier routes with ``affinity``
(``crc32((query, source)) % workers``), so each pair always lands on
the same worker and the pool's **aggregate** capacity
(workers × budget ≥ W) keeps the whole working set warm.  The bench
asserts the shard-fit deterministically (no worker is assigned more
pairs than its LRU holds) — given that, the speedup is annotation
build time vs cache lookup + IPC, not scheduler luck.  On multi-core
hosts GIL escape adds on top; this floor does not depend on it.

Protocol overhead is *included*: the serve side pays real TCP + JSONL
framing per request through :class:`repro.serve.ServeClient`, the
baseline calls ``QueryService.execute`` in-process — the comparison is
end-to-end as deployed, not rigged against the baseline.

Deterministic assertions (always on):

* every serve-tier response equals the single-process response for
  the same request id — status, λ, and every walk's edge list;
* the affinity shard map fits: max pairs per worker ≤ the per-process
  annotation budget (this is what makes the speedup reproducible).

The ≥2× bar is asserted at 4 workers / 16 clients under
``BENCH_SERVE_STRICT=1`` (the default; CI sets 0 on shared runners).
``BENCH_SERVE_JSON`` dumps the measured rows — that is how
``BENCH_serve.json`` at the repo root is produced.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
import zlib
from typing import Dict, List, Tuple

from repro.serve.client import ServeClient
from repro.serve.server import ServeServer
from repro.service import QueryRequest, QueryService
from repro.workloads.transport import TRANSPORT_QUERIES, transport_network

SPEEDUP_TARGET = 2.0
STRICT = os.environ.get("BENCH_SERVE_STRICT", "1") != "0"

WORKERS = 4
#: Per-process annotation-LRU budget (identical on both sides).
ANNOTATION_BUDGET = 24
PLAN_BUDGET = 64
#: (query, source) working set: must exceed ANNOTATION_BUDGET and fit
#: WORKERS × ANNOTATION_BUDGET.
N_SOURCES = 16
REPEATS = 4
CLIENT_COUNTS = (1, 4, 16)
RUNS = 3

_QUERIES = [
    TRANSPORT_QUERIES["ground_only"],
    TRANSPORT_QUERIES["fly_then_ground"],
    TRANSPORT_QUERIES["no_bus"],
    TRANSPORT_QUERIES["one_flight_max"],
]


def _workload() -> Tuple[object, List[Dict]]:
    """The graph plus one pass of the cyclic working-set request list."""
    graph = transport_network(n_cities=96, hub_fraction=0.7, seed=7)
    graph.warm_indexes()
    block = [
        {
            "query": query,
            "source": f"city{s}",
            "target": f"city{90 - s}",
            "limit": 10,
        }
        for query in _QUERIES
        for s in range(N_SOURCES)
    ]
    requests = [
        {**payload, "id": i}
        for i, payload in enumerate(block * REPEATS)
    ]
    return graph, requests


def _shard_fit(requests: List[Dict]) -> int:
    """Max working-set pairs any affinity shard receives."""
    pairs = {(r["query"], r["source"]) for r in requests}
    per_worker = [0] * WORKERS
    for pair in pairs:
        per_worker[zlib.crc32(repr(pair).encode()) % WORKERS] += 1
    return max(per_worker)


def _percentiles(latencies: List[float]) -> Tuple[float, float]:
    ordered = sorted(latencies)
    p50 = ordered[len(ordered) // 2]
    p99 = ordered[min(len(ordered) - 1, (len(ordered) * 99) // 100)]
    return p50, p99


def _run_clients(n_clients: int, requests: List[Dict], roundtrip):
    """Fan the request list over n threads; returns (elapsed, lats, answers).

    Requests are interleaved round-robin so every client's stream
    cycles the full working set — the cache-hostile access pattern.
    ``roundtrip(client_index, payload) -> response dict`` supplies the
    side-specific transport.
    """
    shares = [requests[i::n_clients] for i in range(n_clients)]
    latencies: List[List[float]] = [[] for _ in range(n_clients)]
    answers: Dict[int, Tuple] = {}
    lock = threading.Lock()
    errors: List[str] = []

    def client(index: int) -> None:
        local = {}
        try:
            for payload in shares[index]:
                t0 = time.perf_counter()
                response = roundtrip(index, payload)
                latencies[index].append(time.perf_counter() - t0)
                if response["status"] not in ("ok", "empty"):
                    raise AssertionError(
                        f"request {payload['id']} failed: "
                        f"{response.get('error')}"
                    )
                local[payload["id"]] = (
                    response["status"],
                    response["lam"],
                    tuple(tuple(w["edges"]) for w in response["walks"]),
                )
        except Exception as exc:  # noqa: BLE001 — surface in main thread
            with lock:
                errors.append(str(exc))
            return
        with lock:
            answers.update(local)

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(n_clients)
    ]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - t0
    assert not errors, errors[0]
    return elapsed, [lat for per in latencies for lat in per], answers


# -- the serving-tier side ---------------------------------------------------


class _ServeHarness:
    """A ServeServer on a background event loop + per-client sockets."""

    def __init__(self, graph) -> None:
        self._booted = threading.Event()
        self._stopped: asyncio.Event
        self._loop: asyncio.AbstractEventLoop
        self.port: int
        self._thread = threading.Thread(
            target=self._run, args=(graph,), daemon=True
        )
        self._thread.start()
        if not self._booted.wait(timeout=60):
            raise RuntimeError("serve harness failed to boot")

    def _run(self, graph) -> None:
        async def main() -> None:
            server = ServeServer(
                graph,
                workers=WORKERS,
                routing="affinity",
                max_inflight=32,
                plan_cache_size=PLAN_BUDGET,
                annotation_cache_size=ANNOTATION_BUDGET,
            )
            await server.start()
            self.port = await server.start_tcp()
            self._loop = asyncio.get_running_loop()
            self._stopped = asyncio.Event()
            self._booted.set()
            await self._stopped.wait()
            await server.shutdown()

        asyncio.run(main())

    def close(self) -> None:
        self._loop.call_soon_threadsafe(self._stopped.set)
        self._thread.join(timeout=30)


def _serve_side(harness: _ServeHarness, n_clients: int, requests):
    clients = [
        ServeClient("127.0.0.1", harness.port) for _ in range(n_clients)
    ]
    try:
        # Warm every worker's shard once (affinity: one pass suffices).
        for payload in requests:
            clients[0].request(payload)
        return _run_clients(
            n_clients,
            requests,
            lambda index, payload: clients[index].request(payload),
        )
    finally:
        for client in clients:
            client.close()


# -- the single-process baseline --------------------------------------------


def _single_side(graph, n_clients: int, requests):
    service = QueryService(
        plan_cache_size=PLAN_BUDGET,
        annotation_cache_size=ANNOTATION_BUDGET,
        max_workers=min(n_clients, WORKERS),
    )
    service.register_graph("default", graph, warm=False)

    def roundtrip(index: int, payload: Dict) -> Dict:
        fields = {k: v for k, v in payload.items() if k != "id"}
        response = service.execute(QueryRequest(**fields))
        out = response.to_dict()
        out["id"] = payload["id"]
        return out

    for payload in requests:  # same warm pass as the serve side
        roundtrip(0, payload)
    return _run_clients(n_clients, requests, roundtrip)


def test_serve_throughput_vs_single_process(benchmark, print_table):
    graph, requests = _workload()
    working_set = len({(r["query"], r["source"]) for r in requests})
    assert working_set > ANNOTATION_BUDGET  # single process must thrash
    assert working_set <= WORKERS * ANNOTATION_BUDGET
    # Deterministic shard fit: every worker's share of the working set
    # fits its LRU, so the serve side's hits are guaranteed, not luck.
    assert _shard_fit(requests) <= ANNOTATION_BUDGET

    harness = _ServeHarness(graph)
    rows: List[Dict] = []
    try:
        for n_clients in CLIENT_COUNTS:
            single_runs, serve_runs = [], []
            for _ in range(RUNS):
                single_runs.append(_single_side(graph, n_clients, requests))
                serve_runs.append(_serve_side(harness, n_clients, requests))
            by_elapsed = lambda run: run[0]  # noqa: E731
            single_s, single_lats, single_answers = sorted(
                single_runs, key=by_elapsed
            )[RUNS // 2]
            serve_s, serve_lats, serve_answers = sorted(
                serve_runs, key=by_elapsed
            )[RUNS // 2]

            # Same answers on both sides, walk for walk.
            assert serve_answers == single_answers

            single_p50, single_p99 = _percentiles(single_lats)
            serve_p50, serve_p99 = _percentiles(serve_lats)
            n = len(requests)
            rows.append(
                {
                    "workload": f"serve/affinity-{WORKERS}w-{n_clients}c",
                    "requests": n,
                    "single_rps": round(n / single_s, 1),
                    "serve_rps": round(n / serve_s, 1),
                    "single_p50_ms": round(single_p50 * 1e3, 3),
                    "single_p99_ms": round(single_p99 * 1e3, 3),
                    "serve_p50_ms": round(serve_p50 * 1e3, 3),
                    "serve_p99_ms": round(serve_p99 * 1e3, 3),
                    "speedup": round((n / serve_s) / (n / single_s), 2),
                }
            )
    finally:
        harness.close()

    print_table(
        "EXP-CONC: serving-tier RPS vs single-process QueryService "
        f"({WORKERS} workers, affinity routing, working set "
        f"{working_set} pairs > {ANNOTATION_BUDGET}/process LRU; "
        "median of 3)",
        ["workload", "req", "1-proc rps", "serve rps", "1-proc p50/p99",
         "serve p50/p99", "speedup"],
        [
            [
                r["workload"],
                r["requests"],
                r["single_rps"],
                r["serve_rps"],
                f"{r['single_p50_ms']:.2f}/{r['single_p99_ms']:.2f} ms",
                f"{r['serve_p50_ms']:.2f}/{r['serve_p99_ms']:.2f} ms",
                f"{r['speedup']:.1f}x",
            ]
            for r in rows
        ],
    )

    out = os.environ.get("BENCH_SERVE_JSON")
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "experiment": "EXP-CONC",
                    "speedup_target": SPEEDUP_TARGET,
                    "workers": WORKERS,
                    "routing": "affinity",
                    "annotation_budget_per_process": ANNOTATION_BUDGET,
                    "working_set_pairs": working_set,
                    "rows": rows,
                },
                fh,
                indent=2,
            )
            fh.write("\n")

    # One representative pytest-benchmark record: a 4-client serve pass.
    harness = _ServeHarness(graph)
    try:
        benchmark.pedantic(
            lambda: _serve_side(harness, 4, requests),
            rounds=3,
            iterations=1,
        )
    finally:
        harness.close()

    if STRICT:
        floor_row = rows[-1]  # 16 clients, the EXP-CONC acceptance row
        assert floor_row["speedup"] >= SPEEDUP_TARGET, (
            f"serving tier at {WORKERS} workers / 16 clients is "
            f"{floor_row['speedup']:.2f}x the single-process baseline, "
            f"below the {SPEEDUP_TARGET}x EXP-CONC floor"
        )
