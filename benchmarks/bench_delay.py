"""EXP-T2-DELAY — Theorem 2's delay bound O(λ × |A|).

Three experiments:

* **independence from |D|** — the headline property.  Diamond-chain
  answers embedded in increasingly large unrelated graph bulk: the
  per-output delay must stay flat (slope ≈ 0) while |D| grows 16×;
* **linearity in λ** — chains of growing length;
* **growth with |A|** — complete m-state automata; the delay may grow
  with |Δ| (the bound allows it) and must stay well below quadratic.
"""

from __future__ import annotations

import pytest

from repro.bench import loglog_slope, measure_delays
from repro.core.engine import DistinctShortestWalks
from repro.graph.builder import GraphBuilder
from repro.workloads.worstcase import wide_nfa

from repro.automata.nfa import NFA


def _accept_all(labels=("a",)):
    nfa = NFA(1)
    for a in labels:
        nfa.add_transition(0, a, 0)
    nfa.set_initial(0)
    nfa.set_final(0)
    return nfa


def _diamond_with_bulk(k: int, parallel: int, bulk_edges: int):
    """A diamond chain plus ``bulk_edges`` of irrelevant edges."""
    import random

    rng = random.Random(99)
    builder = GraphBuilder()
    for i in range(k):
        for _ in range(parallel):
            builder.add_edge(f"v{i}", f"v{i + 1}", ["a"])
    n_bulk = max(2, bulk_edges // 4)
    names = [f"bulk{j}" for j in range(n_bulk)]
    for _ in range(bulk_edges):
        builder.add_edge(rng.choice(names), rng.choice(names), ["b"])
    return builder.build()


def test_delay_independent_of_database_size(benchmark, print_table):
    k, parallel = 9, 2  # 512 answers of length 9.
    sizes, delays, rows = [], [], []
    for bulk in (0, 4_000, 16_000, 64_000):
        graph = _diamond_with_bulk(k, parallel, bulk)
        engine = DistinctShortestWalks(graph, _accept_all(), "v0", f"v{k}")
        engine.preprocess()
        stats = measure_delays(engine.enumerate)
        assert stats.outputs == parallel ** k
        sizes.append(graph.size())
        delays.append(stats.mean_delay_s)
        rows.append(
            [
                graph.size(),
                stats.outputs,
                f"{stats.mean_delay_s * 1e6:.2f} µs",
                f"{stats.max_delay_s * 1e6:.2f} µs",
            ]
        )
    slope = loglog_slope(sizes, delays)
    rows.append(["slope", "", f"{slope:.3f}", ""])
    benchmark.pedantic(
        lambda: sum(1 for _ in engine.enumerate()), rounds=2, iterations=1
    )
    print_table(
        "EXP-T2-DELAY (a): delay vs |D| — must be flat (slope ≈ 0)",
        ["|D|", "outputs", "mean delay", "max delay"],
        rows,
    )
    # 16× database growth must not translate into delay growth; allow
    # generous noise but rule out any real dependence.
    assert slope < 0.3, f"delay depends on |D|: slope {slope:.2f}"


def test_delay_grows_linearly_with_lambda(benchmark, print_table):
    lams, delays, rows = [], [], []
    for k in (8, 16, 32, 64):
        graph = _diamond_with_bulk(k, 2, 0)
        engine = DistinctShortestWalks(graph, _accept_all(), "v0", f"v{k}")
        engine.preprocess()
        stats = measure_delays(engine.enumerate, limit=2_000)
        lams.append(k)
        delays.append(stats.mean_delay_s)
        rows.append(
            [k, stats.outputs, f"{stats.mean_delay_s * 1e6:.2f} µs"]
        )
    slope = loglog_slope(lams, delays)
    rows.append(["slope", "", f"{slope:.3f}"])
    benchmark.pedantic(
        lambda: len(engine.first(500)), rounds=2, iterations=1
    )
    print_table(
        "EXP-T2-DELAY (b): delay vs λ — at most linear (slope ≤ 1)",
        ["λ", "outputs measured", "mean delay"],
        rows,
    )
    assert slope < 1.4, f"delay super-linear in λ: slope {slope:.2f}"


def test_delay_growth_with_automaton(benchmark, print_table):
    k = 10
    graph = _diamond_with_bulk(k, 2, 0)
    sizes, delays, rows = [], [], []
    for m in (1, 2, 4, 8):
        nfa = wide_nfa(m, ("a",))
        engine = DistinctShortestWalks(graph, nfa, "v0", f"v{k}")
        engine.preprocess()
        stats = measure_delays(engine.enumerate)
        assert stats.outputs == 2 ** k
        sizes.append(nfa.size())
        delays.append(stats.mean_delay_s)
        rows.append(
            [m, nfa.transition_count, f"{stats.mean_delay_s * 1e6:.2f} µs"]
        )
    slope = loglog_slope(sizes, delays)
    rows.append(["slope", "", f"{slope:.3f}"])
    benchmark.pedantic(
        lambda: sum(1 for _ in engine.enumerate()), rounds=2, iterations=1
    )
    print_table(
        "EXP-T2-DELAY (c): delay vs |A| — bounded by O(λ × |A|)",
        ["|Q|", "|Δ|", "mean delay"],
        rows,
    )
    assert slope < 1.3, f"delay super-linear in |A|: slope {slope:.2f}"


@pytest.mark.parametrize("k", [10])
def test_enumeration_throughput(benchmark, k):
    """pytest-benchmark timing for a full 1024-answer enumeration."""
    graph = _diamond_with_bulk(k, 2, 0)
    engine = DistinctShortestWalks(graph, _accept_all(), "v0", f"v{k}")
    engine.preprocess()

    def run():
        return sum(1 for _ in engine.enumerate())

    count = benchmark(run)
    assert count == 2 ** k
