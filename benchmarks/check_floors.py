"""Perf-regression guard over the committed ``BENCH_*.json`` floors.

Each tracked benchmark suite commits a JSON record at the repo root
(``BENCH_annotate.json`` — EXP-ADJ, ``BENCH_service.json`` —
EXP-SERVICE, ``BENCH_mutations.json`` — EXP-LIVE,
``BENCH_pipeline.json`` — EXP-PIPE, ``BENCH_wal.json`` — EXP-WAL,
``BENCH_semantics.json`` — EXP-SEM, ``BENCH_serve.json`` — EXP-CONC,
``BENCH_obs.json`` — EXP-OBS) whose ``speedup_target`` field is the
suite's acceptance floor (ADJ ≥3×, SERVICE ≥2×, LIVE ≥5×, PIPE ≥2×,
WAL ≥0.5× — i.e. group-commit durability within 2× of no WAL — SEM
≥1.5× — any-walk beats the full shortest pipeline — CONC ≥2× — the
multi-process serving tier beats the single-process service at 4
workers — and OBS ≥0.95× — full instrumentation within 5% of
disabled; PIPE additionally carries ``memory_target`` ≥2×).

This script compares a **fresh re-run** of those suites (their
``BENCH_*_JSON`` env hooks pointed at ``--fresh-dir``) against the
committed floors and fails when any *asserted* row drops below its
floor.  A committed row is "asserted" when its own recorded value
clears the floor — contrast rows the suites deliberately ship below
the bar (e.g. EXP-ADJ's ``transport/no_bus``) are not held to it.

Shared CI runners are noisy, so the bench-smoke job applies a
``--slack`` factor to the wall-clock floors (a fresh speedup may be as
low as ``floor × slack`` before the job fails): the guard then catches
integer-factor regressions — a packed path silently falling back to
dicts, an index build re-running per query — without flaking on
scheduler jitter.  Memory ratios are deterministic and get no slack.

Usage::

    python benchmarks/check_floors.py --fresh-dir /tmp/bench-json \
        [--committed-dir .] [--slack 0.5]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List

#: Committed file → experiment name (documentation; the files carry
#: their floors in-band as ``speedup_target`` / ``memory_target``).
TRACKED = {
    "BENCH_annotate.json": "EXP-ADJ",
    "BENCH_service.json": "EXP-SERVICE",
    "BENCH_mutations.json": "EXP-LIVE",
    "BENCH_pipeline.json": "EXP-PIPE",
    "BENCH_wal.json": "EXP-WAL",
    "BENCH_semantics.json": "EXP-SEM",
    "BENCH_serve.json": "EXP-CONC",
    "BENCH_obs.json": "EXP-OBS",
}


def _load(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def check_file(committed_path: str, fresh_path: str, slack: float) -> List[str]:
    """Failures for one (committed, fresh) benchmark pair."""
    committed = _load(committed_path)
    name = os.path.basename(committed_path)
    if not os.path.exists(fresh_path):
        return [f"{name}: fresh run produced no JSON at {fresh_path}"]
    fresh = _load(fresh_path)
    failures: List[str] = []

    floor = committed.get("speedup_target")
    memory_floor = committed.get("memory_target")
    fresh_rows = {row["workload"]: row for row in fresh.get("rows", [])}

    for row in committed.get("rows", []):
        workload = row["workload"]
        got = fresh_rows.get(workload)
        if got is None:
            failures.append(f"{name}: fresh run lost row {workload!r}")
            continue
        if floor is not None and row.get("speedup", 0.0) >= floor:
            bar = floor * slack
            if got.get("speedup", 0.0) < bar:
                failures.append(
                    f"{name}: {workload!r} speedup {got.get('speedup')}x "
                    f"below floor {floor}x (slack-adjusted bar {bar:.2f}x; "
                    f"committed {row.get('speedup')}x)"
                )
        if (
            memory_floor is not None
            and row.get("memory_ratio", 0.0) >= memory_floor
        ):
            if got.get("memory_ratio", 0.0) < memory_floor:
                failures.append(
                    f"{name}: {workload!r} memory ratio "
                    f"{got.get('memory_ratio')}x below the deterministic "
                    f"floor {memory_floor}x "
                    f"(committed {row.get('memory_ratio')}x)"
                )
    return failures


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh-dir", required=True,
        help="directory holding the freshly re-run BENCH_*.json files",
    )
    parser.add_argument(
        "--committed-dir", default=".",
        help="repo root holding the committed BENCH_*.json floors",
    )
    parser.add_argument(
        "--slack", type=float, default=1.0,
        help="wall-clock floor multiplier for noisy runners (e.g. 0.5)",
    )
    args = parser.parse_args(argv)

    failures: List[str] = []
    checked = 0
    for filename in sorted(TRACKED):
        committed_path = os.path.join(args.committed_dir, filename)
        if not os.path.exists(committed_path):
            failures.append(f"{filename}: committed floor file missing")
            continue
        checked += 1
        failures.extend(
            check_file(
                committed_path,
                os.path.join(args.fresh_dir, filename),
                args.slack,
            )
        )

    if failures:
        print("perf-regression guard FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(
        f"perf-regression guard OK: {checked} committed benchmark files, "
        f"slack {args.slack}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
