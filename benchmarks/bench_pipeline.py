"""EXP-PIPE — packed annotate→trim→enumerate vs the pre-packed pipeline.

The packed-pipeline refactor keeps ``L``/``B`` in CSR-packed flat
arrays end-to-end: no ``_unflatten``, no dict-of-dicts ``B``, an
O(entries) ``Trim``, and enumerators that read queue heads as integer
cursor loads with cached certificate tuples.  This suite measures the
whole query path against a **faithful resurrection of the pre-packed
pipeline** (the PR-4-era code: the same label-indexed BFS but building
dict ``B`` maps in place and ``_unflatten``-ing ``L``; the dict-driven
``Trim`` with its per-(u,p) ``sorted(cells)`` and tuple freezing; the
queue-object DFS with the validating ``Walk`` constructor and the
``_unit_cost`` callback), embedded below so the baseline never drifts.

Per workload:

* ``label_soup`` — full enumeration (the 2**k diamond answers) plus a
  first-64 page;
* ``transport/ground_only`` (antipodal pair, λ = |V|/2) — a first-1000
  page: the answer count is astronomical (~10³⁶), so the end-to-end
  query every real client runs is annotate → trim → first-k, which is
  exactly what the batched service's pagination executes.

Besides wall-clock, the suite reports the **annotation + trim memory
footprint** (tracemalloc, retained bytes) and asserts the ISSUE bars:
≥2× end-to-end and ≥2× memory on both workloads.  Output *order* is
asserted bit-identical between the dict pipeline, the packed eager
enumerator and the packed memoryless enumerator on every run — that
assertion is deterministic and stays on even under
``BENCH_PIPE_STRICT=0`` (the CI setting that relaxes the
hardware-sensitive wall-clock ratios on noisy shared runners).

When ``BENCH_PIPELINE_JSON`` names a file, the measured rows are
dumped there as JSON — that is how ``BENCH_pipeline.json`` at the repo
root is produced.
"""

from __future__ import annotations

import json
import os
import statistics
import time
import tracemalloc
from array import array
from itertools import islice
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.annotate import Annotation, _unflatten, annotate
from repro.core.compile import compile_query
from repro.core.enumerate import enumerate_walks
from repro.core.memoryless import enumerate_memoryless
from repro.core.trim import TrimmedAnnotation, resumable_trim, trim
from repro.core.walks import Walk
from repro.datastructures.restartable_queue import RestartableQueue
from repro.query import rpq
from repro.workloads.transport import (
    TRANSPORT_QUERIES,
    antipodal_pair,
    transport_network,
)
from repro.workloads.worstcase import label_soup

SPEEDUP_TARGET = 2.0
MEMORY_TARGET = 2.0

#: Wall-clock ratios are hardware-sensitive; CI sets
#: BENCH_PIPE_STRICT=0 to keep them report-only on shared runners.
#: The output-order and memory-ratio assertions are deterministic and
#: always enforced.
STRICT = os.environ.get("BENCH_PIPE_STRICT", "1") != "0"


# ---------------------------------------------------------------------------
# The pre-packed pipeline, resurrected verbatim (modulo imports) from the
# PR-4-era sources so the baseline cannot drift as the live code evolves.
# ---------------------------------------------------------------------------


def _annotate_dict(cq, source, target=None, saturate=False) -> Annotation:
    """Pre-packed ``annotate``: flat BFS + in-place dict ``B`` +
    ``_unflatten``-ed ``L`` (the PR-1..PR-4 implementation)."""
    graph = cq.graph
    n = graph.vertex_count
    n_states = cq.n_states
    tgt_arr = graph.tgt_array
    ti_arr = graph.tgt_idx_array
    indptr, csr_edges = graph.out_csr
    out_labels = graph.out_labels_array
    firing = cq.firing_labels
    firing_sets = cq.firing_sets
    dense = cq.delta_dense
    n_labels = cq.label_count
    final = cq.final

    dist = array("q", [-1]) * (n * n_states)
    B: List[dict] = [{} for _ in range(n)]

    next_pairs: List[Tuple[int, int]] = []
    source_base = source * n_states
    for p in sorted(cq.initial_closure):
        dist[source_base + p] = 0
        next_pairs.append((source, p))

    stop = False
    level = 0
    while next_pairs and not stop:
        level += 1
        current, next_pairs = next_pairs, []
        for v, q in current:
            fire = firing[q]
            mine = out_labels[v]
            if not fire or not mine:
                continue
            if len(fire) > len(mine):
                fset = firing_sets[q]
                fire = [a for a in mine if a in fset]
            q_base = q * n_labels
            for a in fire:
                b = a * n + v
                start, end = indptr[b], indptr[b + 1]
                if start == end:
                    continue
                targets = dense[q_base + a]
                for j in range(start, end):
                    e = csr_edges[j]
                    u = tgt_arr[e]
                    u_base = u * n_states
                    back_map = B[u]
                    ti = ti_arr[e]
                    for p in targets:
                        known = dist[u_base + p]
                        if known < 0:
                            dist[u_base + p] = level
                            next_pairs.append((u, p))
                            if u == target and p in final and not saturate:
                                stop = True
                            back_map.setdefault(p, {}).setdefault(
                                ti, []
                            ).append(q)
                        elif known == level:
                            back_map[p].setdefault(ti, []).append(q)

    L = _unflatten(dist, n, n_states)
    if target is not None and not saturate:
        if stop:
            lam: Optional[int] = level
            target_states = frozenset(
                f for f in final if L[target].get(f) == level
            )
        else:
            lam, target_states = None, frozenset()
        return Annotation(
            source=source, target=target, lam=lam, L=L, B=B,
            target_states=target_states, steps=level, final=final,
            initial_closure=cq.initial_closure, n_states=n_states,
        )
    return Annotation(
        source=source, target=target, lam=None, L=L, B=B,
        target_states=frozenset(), saturated=True, steps=level,
        final=final, initial_closure=cq.initial_closure, n_states=n_states,
    )


def _trim_dict(graph, annotation: Annotation) -> TrimmedAnnotation:
    """Pre-packed ``Trim``: per-(u, p) ``sorted(cells)`` + tuple
    freezing into :class:`RestartableQueue` objects."""
    in_array = graph.in_array
    queues: List[Dict[int, RestartableQueue]] = []
    B = annotation.B
    for u in range(len(B)):
        in_list = in_array[u]
        per_state: Dict[int, RestartableQueue] = {}
        for p, cells in B[u].items():
            items = [(in_list[i], tuple(cells[i])) for i in sorted(cells)]
            if items:
                per_state[p] = RestartableQueue(items)
        queues.append(per_state)
    return TrimmedAnnotation(queues)


def _unit_cost(_e: int) -> int:
    return 1


def _enumerate_dict(graph, trimmed, budget, target, start_states,
                    cost_of=None):
    """Pre-packed ``Enumerate``: queue-object DFS, ``_unit_cost``
    callback, validating ``Walk`` constructor."""
    if budget is None or not start_states:
        return
    if budget == 0:
        yield Walk(graph, (), start=target)
        return
    if cost_of is None:
        cost_of = _unit_cost

    trimmed.acquire()
    queues = trimmed.queues
    ti_arr = graph.tgt_idx_array
    src_arr = graph.src_array

    chosen: List[int] = []
    stack: List[Tuple[int, Tuple[int, ...], int]] = [
        (target, tuple(sorted(start_states)), budget)
    ]
    try:
        while stack:
            u, states, remaining = stack[-1]
            if remaining == 0:
                yield Walk(graph, tuple(reversed(chosen)))
                stack.pop()
                chosen.pop()
                continue

            per_state = queues[u]
            emin = -1
            emin_ti = -1
            for p in states:
                queue = per_state.get(p)
                if queue is not None and not queue.exhausted:
                    e = queue.peek()[0]
                    e_ti = ti_arr[e]
                    if emin < 0 or e_ti < emin_ti:
                        emin, emin_ti = e, e_ti

            if emin < 0:
                for p in states:
                    queue = per_state.get(p)
                    if queue is not None:
                        queue.restart()
                stack.pop()
                if chosen:
                    chosen.pop()
                continue

            child_states = set()
            for p in states:
                queue = per_state.get(p)
                if queue is not None and not queue.exhausted:
                    e, preds = queue.peek()
                    if e == emin:
                        child_states.update(preds)
                        queue.advance()

            chosen.append(emin)
            stack.append(
                (
                    src_arr[emin],
                    tuple(sorted(child_states)),
                    remaining - cost_of(emin),
                )
            )
    finally:
        trimmed.restart_all()


# ---------------------------------------------------------------------------
# Measurement helpers.
# ---------------------------------------------------------------------------


def _median_time(fn: Callable[[], object], repeat: int = 5) -> float:
    times = []
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def _retained_bytes(builder: Callable[[], object]) -> int:
    """Retained tracemalloc bytes of whatever ``builder`` returns."""
    tracemalloc.start()
    before = tracemalloc.get_traced_memory()[0]
    keep = builder()
    after = tracemalloc.get_traced_memory()[0]
    tracemalloc.stop()
    del keep
    return after - before


def _run_dict(cq, s, t, k=None):
    ann = _annotate_dict(cq, s, t)
    trimmed = _trim_dict(cq.graph, ann)
    it = _enumerate_dict(cq.graph, trimmed, ann.lam, t, ann.target_states)
    walks = list(it if k is None else islice(it, k))
    if k is not None and hasattr(it, "close"):
        it.close()
    return walks


def _run_packed(cq, s, t, k=None):
    ann = annotate(cq, s, t)
    trimmed = trim(cq.graph, ann)
    it = enumerate_walks(cq.graph, trimmed, ann.lam, t, ann.target_states)
    walks = list(it if k is None else islice(it, k))
    if k is not None and hasattr(it, "close"):
        it.close()
    return walks


def _run_packed_memoryless(cq, s, t, k=None):
    ann = annotate(cq, s, t)
    resumable = resumable_trim(cq.graph, ann)
    it = enumerate_memoryless(
        cq.graph, resumable, ann.lam, t, ann.target_states
    )
    walks = list(it if k is None else islice(it, k))
    if k is not None and hasattr(it, "close"):
        it.close()
    return walks


def _measure_workload(rows, name, graph, nfa, s, t, k):
    """One row: dict vs packed end-to-end (+ memory), order asserted.

    ``k=None`` enumerates the full answer set; an integer takes the
    first-k page (annotate → trim → first-k, closing the iterator).
    """
    cq = compile_query(graph, nfa)
    # Warm the per-database lazy indexes outside the timings: both
    # pipelines share them and they are built once per graph.
    graph.out_csr
    graph.out_labels_array
    graph.in_array
    graph.tgt_idx_array

    dict_walks = _run_dict(cq, s, t, k)
    packed_walks = _run_packed(cq, s, t, k)
    memoryless_walks = _run_packed_memoryless(cq, s, t, k)
    dict_edges = [w.edges for w in dict_walks]
    # Bit-identical output order across the pre-packed pipeline and
    # both packed enumerators — deterministic, always asserted.
    assert dict_edges == [w.edges for w in packed_walks], (
        f"{name}: packed eager order differs from the dict pipeline"
    )
    assert dict_edges == [w.edges for w in memoryless_walks], (
        f"{name}: packed memoryless order differs from the dict pipeline"
    )

    dict_s = _median_time(lambda: _run_dict(cq, s, t, k))
    packed_s = _median_time(lambda: _run_packed(cq, s, t, k))
    speedup = dict_s / packed_s if packed_s else float("inf")

    mem_dict = _retained_bytes(
        lambda: (lambda ann: (ann, _trim_dict(graph, ann)))(
            _annotate_dict(cq, s, t)
        )
    )
    mem_packed = _retained_bytes(
        lambda: (lambda ann: (ann, trim(graph, ann)))(annotate(cq, s, t))
    )
    memory_ratio = mem_dict / mem_packed if mem_packed else float("inf")

    rows.append(
        {
            "workload": name,
            "vertices": graph.vertex_count,
            "edges": graph.edge_count,
            "lam": len(dict_edges[0]) if dict_edges else 0,
            "outputs": len(dict_edges),
            "mode": "full" if k is None else f"first-{k}",
            "dict_ms": round(dict_s * 1e3, 3),
            "packed_ms": round(packed_s * 1e3, 3),
            "speedup": round(speedup, 2),
            "dict_kb": round(mem_dict / 1024, 1),
            "packed_kb": round(mem_packed / 1024, 1),
            "memory_ratio": round(memory_ratio, 2),
        }
    )
    return speedup, memory_ratio


def test_pipeline_dict_vs_packed(benchmark, print_table):
    rows: List[dict] = []
    asserted: List[Tuple[str, float, float]] = []

    # label_soup: 2**k diamond answers, labels the query never fires on.
    graph, nfa, soup_sn, soup_tn = label_soup(
        k=12, parallel=2, extra_labels=24, noise_out=12
    )
    s, t = graph.vertex_id(soup_sn), graph.vertex_id(soup_tn)
    speedup, ratio = _measure_workload(
        rows, "worstcase/label_soup (full)", graph, nfa, s, t, None
    )
    asserted.append(("label_soup full", speedup, ratio))
    _measure_workload(
        rows, "worstcase/label_soup (first-64)", graph, nfa, s, t, 64
    )

    # transport: antipodal ground-only query, λ = |V|/2, ~10³⁶ answers —
    # the end-to-end client query is annotate → trim → first-k.
    net = transport_network(n_cities=240, hub_fraction=0.8, seed=3)
    sn, tn = antipodal_pair(net)
    s, t = net.vertex_id(sn), net.vertex_id(tn)
    ground = rpq(TRANSPORT_QUERIES["ground_only"]).automaton
    speedup, ratio = _measure_workload(
        rows, "transport/ground_only (first-1000)", net, ground, s, t, 1000
    )
    asserted.append(("transport first-1000", speedup, ratio))

    print_table(
        "EXP-PIPE: packed pipeline vs pre-packed dict pipeline "
        "(end-to-end annotate→trim→enumerate, median of 5)",
        ["workload", "λ", "outputs", "dict", "packed", "speedup",
         "dict mem", "packed mem", "mem ratio"],
        [
            [
                r["workload"],
                r["lam"],
                r["outputs"],
                f"{r['dict_ms']:.2f} ms",
                f"{r['packed_ms']:.2f} ms",
                f"{r['speedup']:.1f}x",
                f"{r['dict_kb']:.0f} kB",
                f"{r['packed_kb']:.0f} kB",
                f"{r['memory_ratio']:.1f}x",
            ]
            for r in rows
        ],
    )

    out = os.environ.get("BENCH_PIPELINE_JSON")
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "experiment": "EXP-PIPE",
                    "speedup_target": SPEEDUP_TARGET,
                    "memory_target": MEMORY_TARGET,
                    "rows": rows,
                },
                fh,
                indent=2,
            )
            fh.write("\n")

    # One representative pytest-benchmark record (label_soup, packed).
    soup_cq = compile_query(graph, nfa)
    soup_s, soup_t = graph.vertex_id(soup_sn), graph.vertex_id(soup_tn)
    benchmark.pedantic(
        lambda: _run_packed(soup_cq, soup_s, soup_t), rounds=3, iterations=1
    )

    # The memory bar is deterministic — always asserted.
    for label, speedup, ratio in asserted:
        assert ratio >= MEMORY_TARGET, (
            f"{label} memory ratio {ratio:.2f}x below the "
            f"{MEMORY_TARGET}x target"
        )
    if STRICT:
        for label, speedup, ratio in asserted:
            assert speedup >= SPEEDUP_TARGET, (
                f"{label} speedup {speedup:.2f}x below the "
                f"{SPEEDUP_TARGET}x target"
            )
