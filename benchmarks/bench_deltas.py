"""EXP-DELTA — §6 perspectives: delta-encoded outputs.

The paper's closing remarks: much of the delay is spent *writing the
answer down* (λ symbols), yet consecutive answers share large parts;
emitting only the difference can shrink the amortized output.  Because
the DFS emits answers grouped by shared suffixes, the natural encoding
is "reuse the last k edges of the previous answer".

This suite measures the compression on diamond chains (2^k answers of
length k): the full stream costs k symbols per answer, the delta
stream tends to ~3 symbols per answer regardless of k — and decoding
reproduces the exact stream.
"""

from __future__ import annotations

from repro.core.deltas import delta_decode, delta_encode, stream_sizes
from repro.core.engine import DistinctShortestWalks
from repro.workloads.worstcase import diamond_chain


def test_delta_compression_ratio(benchmark, print_table):
    rows = []
    per_answer = []
    for k in (6, 8, 10, 12):
        graph, nfa, s, t = diamond_chain(k, parallel=2)
        engine = DistinctShortestWalks(graph, nfa, s, t)
        engine.preprocess()
        records, symbols = stream_sizes(delta_encode(engine.enumerate()))
        answers = 2 ** k
        assert records == answers
        full = answers * k
        per_answer.append(symbols / answers)
        rows.append(
            [
                k,
                answers,
                full,
                symbols,
                f"{full / symbols:.2f}x",
                f"{symbols / answers:.2f}",
            ]
        )
    benchmark.pedantic(
        lambda: stream_sizes(delta_encode(engine.enumerate())),
        rounds=2,
        iterations=1,
    )
    print_table(
        "EXP-DELTA: full output vs delta-encoded output (symbols)",
        ["k", "answers", "full", "delta", "ratio", "delta/answer"],
        rows,
    )
    # Amortized delta size is bounded while full output grows with k.
    assert per_answer[-1] < 4.0
    assert per_answer[-1] < per_answer[0] * 1.5


def test_delta_round_trip(benchmark):
    graph, nfa, s, t = diamond_chain(9, parallel=2)
    engine = DistinctShortestWalks(graph, nfa, s, t)
    engine.preprocess()
    original = [w.edges for w in engine.enumerate()]
    deltas = list(delta_encode(engine.enumerate()))
    decoded = [w.edges for w in delta_decode(graph, deltas)]
    assert decoded == original

    def run():
        return sum(
            1 for _ in delta_decode(graph, delta_encode(engine.enumerate()))
        )

    count = benchmark(run)
    assert count == 2 ** 9
