"""EXP-MEM — Remark 17: memory stays O(|E| × |Δ|) during enumeration.

We count the entries actually stored by the annotation, the trimmed
queues and the resumable index, and compare them to the |E| × |Δ|
bound; we also verify that a full enumeration leaves the structure
sizes unchanged (the algorithm never grows its state as it emits
answers — the pitfall Remark 17 warns about).
"""

from __future__ import annotations

from repro.core.engine import DistinctShortestWalks
from repro.graph.generators import random_multilabel
from repro.workloads.worstcase import diamond_chain, wide_nfa


def test_structure_sizes_within_bound(benchmark, print_table):
    rows = []
    for n_edges in (500, 2_000, 8_000):
        graph = random_multilabel(
            max(32, n_edges // 8), n_edges, seed=21,
            ensure_path=("src", "dst", 5),
        )
        nfa = wide_nfa(3, ("a", "b"))
        engine = DistinctShortestWalks(graph, nfa, "src", "dst")
        engine.preprocess()
        sizes = engine.structure_sizes()
        bound = graph.edge_count * (
            nfa.transition_count + nfa.n_states
        )
        assert sizes["annotation_entries"] <= bound
        assert sizes["trimmed_items"] <= graph.edge_count * nfa.n_states
        rows.append(
            [
                graph.edge_count,
                sizes["annotation_entries"],
                sizes["trimmed_items"],
                bound,
            ]
        )
    benchmark.pedantic(
        lambda: engine.structure_sizes(), rounds=3, iterations=1
    )
    print_table(
        "EXP-MEM: stored entries vs the O(|E|×|Δ|) bound (Remark 17)",
        ["|E|", "annotation entries", "trimmed items", "|E|×|Δ| bound"],
        rows,
    )


def test_enumeration_does_not_grow_structures(benchmark):
    graph, nfa, s, t = diamond_chain(10, parallel=2)
    engine = DistinctShortestWalks(graph, nfa, s, t)
    engine.preprocess()
    before = engine.structure_sizes()

    count = benchmark(lambda: sum(1 for _ in engine.enumerate()))
    assert count == 2 ** 10

    after = engine.structure_sizes()
    assert before == after, "enumeration must not grow precomputed state"
