"""EXP-T1 / EXP-NAIVE / EXP-SIMPLE — the paper's algorithm vs baselines.

* **EXP-NAIVE**: on the duplicate bomb, the naive product enumeration
  visits m^k product paths to emit ONE answer; the paper's algorithm
  emits it directly.  We measure the visited-path counter and the
  wall-clock gap.
* **EXP-T1**: the Martens–Trautner reduction is output-equivalent but
  its delay degrades with |D| (its alphabet *is* the edge set), while
  Theorem 2's delay does not.
* **EXP-SIMPLE**: on the deterministic single-label setting, the O(λ)
  fast path beats the general algorithm by a constant factor.
"""

from __future__ import annotations

import time

import pytest

from repro.baselines.martens_trautner import martens_trautner_walks
from repro.baselines.naive import NaiveStats, naive_enumerate
from repro.bench import measure_delays
from repro.core.compile import compile_query
from repro.core.engine import DistinctShortestWalks
from repro.core.simple import SimpleShortestWalks
from repro.graph.generators import grid
from repro.workloads.worstcase import diamond_chain, duplicate_bomb

from repro.automata.nfa import NFA


def test_naive_duplicate_blowup(benchmark, print_table):
    rows = []
    for k, m in ((4, 3), (6, 3), (8, 3)):
        graph, nfa, s, t = duplicate_bomb(k, m)
        cq = compile_query(graph, nfa)
        sid, tid = graph.vertex_id(s), graph.vertex_id(t)

        started = time.perf_counter()
        stats = NaiveStats()
        naive_walks = list(naive_enumerate(cq, sid, tid, stats))
        naive_time = time.perf_counter() - started

        started = time.perf_counter()
        engine = DistinctShortestWalks(graph, nfa, sid, tid)
        our_walks = list(engine.enumerate())
        our_time = time.perf_counter() - started

        assert len(naive_walks) == len(our_walks) == 1
        assert stats.product_paths == m ** k
        rows.append(
            [
                f"k={k}, m={m}",
                stats.product_paths,
                stats.duplicates_suppressed,
                f"{naive_time * 1e3:.2f} ms",
                f"{our_time * 1e3:.2f} ms",
                f"{naive_time / max(our_time, 1e-9):.1f}x",
            ]
        )
    benchmark.pedantic(
        lambda: list(DistinctShortestWalks(graph, nfa, sid, tid).enumerate()),
        rounds=2,
        iterations=1,
    )
    print_table(
        "EXP-NAIVE: duplicate bomb — naive visits m^k paths for 1 answer",
        ["instance", "product paths", "dups", "naive", "ours", "speedup"],
        rows,
    )
    # The blowup is the claim: last instance suppresses 3^8 - 1 copies.
    assert rows[-1][2] == 3 ** 8 - 1


def test_martens_trautner_delay_grows_with_database(benchmark, print_table):
    """Same answers; the reduction's cost scales with |D|, ours not.

    The extra database bulk is a long 'a'-labeled tail *reachable from
    the source* but never on a shortest s→t walk.  Theorem 2's
    ``Annotate`` stops at BFS level λ and never walks the tail past
    depth λ; the reduction's product automaton A′ must materialize the
    whole reachable product and run λ backward-layer sweeps over it, so
    its time-to-first-output grows with |D| while our delay stays flat.
    """
    k, parallel = 8, 2
    rows = []
    our_delays, mt_firsts, sizes = [], [], []
    from repro.graph.builder import GraphBuilder

    for bulk in (0, 4_000, 16_000):
        builder = GraphBuilder()
        for i in range(k):
            for _ in range(parallel):
                builder.add_edge(f"v{i}", f"v{i + 1}", ["a"])
        # Reachable tail: v0 -> c0 -> c1 -> ... (same label as the query).
        previous = "v0"
        for j in range(bulk):
            builder.add_edge(previous, f"c{j}", ["a"])
            previous = f"c{j}"
        graph = builder.build()
        nfa = NFA(1)
        nfa.add_transition(0, "a", 0)
        nfa.set_initial(0)
        nfa.set_final(0)
        cq = compile_query(graph, nfa)
        s, t = graph.vertex_id("v0"), graph.vertex_id(f"v{k}")

        engine = DistinctShortestWalks(graph, nfa, s, t)
        engine.preprocess()
        ours = measure_delays(engine.enumerate)
        theirs = measure_delays(lambda: martens_trautner_walks(cq, s, t))
        assert ours.outputs == theirs.outputs == parallel ** k

        sizes.append(graph.size())
        our_delays.append(ours.mean_delay_s)
        mt_firsts.append(theirs.first_output_s)
        rows.append(
            [
                graph.size(),
                f"{ours.mean_delay_s * 1e6:.1f} µs",
                f"{theirs.mean_delay_s * 1e6:.1f} µs",
                f"{theirs.first_output_s * 1e3:.1f} ms",
            ]
        )
    benchmark.pedantic(
        lambda: sum(1 for _ in martens_trautner_walks(cq, s, t)),
        rounds=2,
        iterations=1,
    )
    print_table(
        "EXP-T1: ours vs Martens–Trautner as |D| grows (same answers)",
        ["|D|", "our mean delay", "MT mean delay", "MT first output"],
        rows,
    )
    # 400×+ database growth: the reduction's first output degrades by a
    # large factor, our per-output delay stays flat (< 3x noise).
    assert mt_firsts[-1] > 3 * mt_firsts[0]
    assert our_delays[-1] < 3 * max(our_delays[0], 1e-6)


def test_simple_fast_path_constant_factor(benchmark, print_table):
    """EXP-SIMPLE: O(λ)-delay fast path vs the general algorithm."""
    g = grid(7, 7)
    nfa = NFA(13)
    for i in range(12):
        nfa.add_transition(i, "r", i + 1)
        nfa.add_transition(i, "d", i + 1)
    nfa.set_initial(0)
    nfa.set_final(12)

    simple = SimpleShortestWalks(g, nfa, "n0_0", "n6_6")
    simple.preprocess()
    stats_simple = measure_delays(simple.enumerate)

    general = DistinctShortestWalks(g, nfa, "n0_0", "n6_6")
    general.preprocess()
    stats_general = measure_delays(general.enumerate)

    assert stats_simple.outputs == stats_general.outputs == 924  # C(12,6)
    benchmark.pedantic(
        lambda: sum(1 for _ in simple.enumerate()), rounds=2, iterations=1
    )
    print_table(
        "EXP-SIMPLE: fast path vs general algorithm (7×7 grid, 924 answers)",
        ["engine", "outputs", "mean delay", "max delay"],
        [
            [
                "simple (product BFS)",
                stats_simple.outputs,
                f"{stats_simple.mean_delay_s * 1e6:.1f} µs",
                f"{stats_simple.max_delay_s * 1e6:.1f} µs",
            ],
            [
                "general (Theorem 2)",
                stats_general.outputs,
                f"{stats_general.mean_delay_s * 1e6:.1f} µs",
                f"{stats_general.max_delay_s * 1e6:.1f} µs",
            ],
        ],
    )


@pytest.mark.parametrize(
    "algorithm", ["ours", "martens_trautner", "naive"]
)
def test_algorithms_on_diamond_chain(benchmark, algorithm):
    """pytest-benchmark head-to-head on 256 answers."""
    graph, nfa, s, t = diamond_chain(8, parallel=2)
    cq = compile_query(graph, nfa)
    sid, tid = graph.vertex_id(s), graph.vertex_id(t)

    if algorithm == "ours":
        run = lambda: sum(
            1 for _ in DistinctShortestWalks(graph, nfa, sid, tid).enumerate()
        )
    elif algorithm == "martens_trautner":
        run = lambda: sum(1 for _ in martens_trautner_walks(cq, sid, tid))
    else:
        run = lambda: sum(1 for _ in naive_enumerate(cq, sid, tid))

    count = benchmark(run)
    assert count == 2 ** 8
