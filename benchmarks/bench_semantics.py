"""EXP-SEM — the any-walk cheap mode vs full shortest enumeration.

The PR-7 claim: ``any_walk()`` (one witness per pair, Cypher/GQL
``ANY``) is an *early-exit* BFS over the product — no Trim, no
Enumerate, no annotation materialized — and therefore beats the full
distinct-shortest-walks pipeline on latency whenever the caller only
needs reachability-with-witness.  Three per-query workloads probe the
two ways the full pipeline spends its time:

* ``transport/pairs`` — the EXP-SERVICE pair mix on the transport
  ring, first page of 20 per pair (the answer sets are exponential in
  the ring distance — parallel train/bus hops — so full drains are
  off the table for *any* engine): annotation cost dominated by the
  saturating product BFS that any-walk cuts short at the target;
* ``diamond/enumeration`` — ``diamond_chain(12, parallel=2)``:
  2^12 = 4096 distinct shortest walks, drained completely; the full
  pipeline must emit every one, any-walk exactly one;
* ``soup/annotation`` — ``label_soup(k=144)``, first answer only:
  the product is deep and label-noisy; any-walk still pays a BFS but
  skips Trim, the packed materialization and the enumerator setup.

Both sides run **cold per query** (annotation cache disabled for the
shortest side; any-walk never touches it by construction) so the ratio
compares per-query engine work, not cache luck.  Deterministic
assertions (always on): per pair, any-walk yields exactly one row iff
the pair matches, and the witness length equals the shortest side's λ.

The wall-clock bar (``speedup_target`` in the committed JSON,
tracked by ``check_floors.py``) is asserted under
``BENCH_SEM_STRICT=1`` (the default; CI sets 0 on shared runners).
``BENCH_SEM_JSON`` dumps the measured rows — that is how
``BENCH_semantics.json`` at the repo root is produced.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from typing import Dict, List, Tuple

from repro.api import Database
from repro.workloads.transport import TRANSPORT_QUERIES, transport_network
from repro.workloads.worstcase import diamond_chain, label_soup

SPEEDUP_TARGET = 1.5
STRICT = os.environ.get("BENCH_SEM_STRICT", "1") != "0"

Job = Tuple[str, str, str, int]  # (expression, source, target, limit)


def _workloads() -> List[Tuple[str, object, List[Job]]]:
    transport = transport_network(n_cities=96, hub_fraction=0.2, seed=7)
    transport.warm_indexes()
    transport_jobs = [
        (expression, f"city{s}", f"city{10 * t}", 20)
        for expression in (
            TRANSPORT_QUERIES["ground_only"],
            TRANSPORT_QUERIES["fly_then_ground"],
            TRANSPORT_QUERIES["no_bus"],
        )
        for s in range(3)
        for t in (1, 3)
    ]

    diamond, _, d_source, d_target = diamond_chain(12, parallel=2)
    diamond.warm_indexes()

    soup, _, s_source, s_target = label_soup(
        144, parallel=2, extra_labels=8, noise_out=4
    )
    soup.warm_indexes()

    return [
        ("transport/pairs", transport, transport_jobs),
        (
            "diamond/enumeration",
            diamond,
            [("a*", d_source, d_target, None)],
        ),
        ("soup/annotation", soup, [("a*", s_source, s_target, 1)]),
    ]


def _shortest_side(graph, jobs: List[Job]) -> List[Tuple]:
    # Annotation cache off: every query pays its full Annotate → Trim
    # → Enumerate cost, like a first-contact request.
    db = Database(graph, annotation_cache_size=0, warm=False)
    out = []
    for expression, source, target, limit in jobs:
        rs = (
            db.query(expression).from_(source).to(target).limit(limit)
            .run()
        )
        out.append((rs.lam, sum(1 for _ in rs)))
    return out


def _any_side(graph, jobs: List[Job]) -> List[Tuple]:
    db = Database(graph, warm=False)  # any-walk never caches annotations.
    out = []
    for expression, source, target, _limit in jobs:
        rs = (
            db.query(expression).from_(source).to(target).any_walk().run()
        )
        rows = rs.all()
        out.append((rs.lam, [len(r.walk.edges) for r in rows]))
    return out


def _median_seconds(run, runs: int = 3):
    times, result = [], None
    for _ in range(runs):
        t0 = time.perf_counter()
        result = run()
        times.append(time.perf_counter() - t0)
    return statistics.median(times), result


def test_any_walk_beats_full_enumeration(benchmark, print_table):
    workloads = _workloads()

    rows: List[Dict] = []
    for name, graph, jobs in workloads:
        shortest_s, shortest_out = _median_seconds(
            lambda g=graph, j=jobs: _shortest_side(g, j)
        )
        any_s, any_out = _median_seconds(
            lambda g=graph, j=jobs: _any_side(g, j)
        )

        # One witness per matching pair, of exactly the shortest λ.
        for (lam, n_answers), (any_lam, witness_lens) in zip(
            shortest_out, any_out
        ):
            if lam is None:
                assert witness_lens == [], name
            else:
                assert n_answers >= 1, name
                assert any_lam == lam, name
                assert witness_lens == [lam], name

        speedup = shortest_s / any_s if any_s else float("inf")
        rows.append(
            {
                "workload": name,
                "pairs": len(jobs),
                "answers": sum(n for _, n in shortest_out),
                "shortest_s": round(shortest_s, 4),
                "any_s": round(any_s, 4),
                "speedup": round(speedup, 2),
            }
        )

    print_table(
        "EXP-SEM: any-walk witness vs full shortest enumeration, "
        "cold per query (median of 3)",
        list(rows[0].keys()),
        [list(r.values()) for r in rows],
    )

    out = os.environ.get("BENCH_SEM_JSON")
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "experiment": "EXP-SEM",
                    "speedup_target": SPEEDUP_TARGET,
                    "rows": rows,
                },
                fh,
                indent=2,
            )
            fh.write("\n")

    # The pedantic timer re-times one any-walk pass over the pair mix.
    name, graph, jobs = workloads[0]
    benchmark.pedantic(
        lambda: _any_side(graph, jobs), iterations=1, rounds=3
    )

    if STRICT:
        for row in rows:
            assert row["speedup"] >= SPEEDUP_TARGET, (
                f"any-walk speedup on {row['workload']} "
                f"{row['speedup']}x below {SPEEDUP_TARGET}x"
            )
