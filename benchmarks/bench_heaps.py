"""EXP-ABL-HEAP — priority queues for the Dijkstra annotation (§5.3).

The Distinct Cheapest Walks preprocessing bound cites Fredman–Tarjan,
i.e. a decrease-key priority queue.  In practice a binary heap with
lazy deletion (duplicate entries, skipped when stale) competes with the
pointer-based pairing heap; this suite runs both on growing intermodal
transport networks and checks that

* the annotations agree (λ, answer sets — asserted), and
* neither structure degrades asymptotically (the ratio between the two
  stays bounded as |D| grows 16×).

This is an ablation of an implementation choice, not a paper claim:
the paper's delay bound is heap-independent, and the table documents
why ``heap="binary"`` is a sound default in Python.
"""

from __future__ import annotations

import time

from repro.automata import regex_to_nfa
from repro.core.cheapest import DistinctCheapestWalks
from repro.workloads.transport import antipodal_pair, transport_network

_SIZES = (32, 128, 512)
_POLICY = "flight* (train | bus)*"


def test_binary_vs_pairing_heap(benchmark, print_table):
    rows = []
    ratios = []
    for n in _SIZES:
        graph = transport_network(n, seed=11)
        src, tgt = antipodal_pair(graph)
        nfa = regex_to_nfa(_POLICY)

        t0 = time.perf_counter()
        binary = DistinctCheapestWalks(graph, nfa, src, tgt, heap="binary")
        binary.preprocess()
        t1 = time.perf_counter()
        pairing = DistinctCheapestWalks(graph, nfa, src, tgt, heap="pairing")
        pairing.preprocess()
        t2 = time.perf_counter()

        assert binary.cheapest_cost == pairing.cheapest_cost
        answers_b = [w.edges for w in binary.enumerate()]
        answers_p = [w.edges for w in pairing.enumerate()]
        assert answers_b == answers_p

        binary_s, pairing_s = t1 - t0, t2 - t1
        ratios.append(pairing_s / binary_s)
        rows.append(
            [
                graph.size(),
                binary.cheapest_cost,
                len(answers_b),
                f"{binary_s * 1e3:.2f} ms",
                f"{pairing_s * 1e3:.2f} ms",
            ]
        )
    benchmark.pedantic(
        lambda: DistinctCheapestWalks(
            graph, nfa, src, tgt, heap="binary"
        ).preprocess(),
        rounds=2,
        iterations=1,
    )
    print_table(
        "EXP-ABL-HEAP: Dijkstra annotation, binary vs pairing heap",
        ["|D|", "cheapest cost", "answers", "binary", "pairing"],
        rows,
    )
    # Same asymptotics: the ratio must not drift by more than ~4× while
    # the database grows 16×.
    assert max(ratios) < 4 * max(min(ratios), 0.25), ratios
