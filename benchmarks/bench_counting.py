"""EXP-COUNT — answer counting without enumeration.

Two tables:

* (a) the DP counter (:func:`repro.core.count.count_distinct_shortest`)
  vs full enumeration on diamond chains with ``2**k`` answers: the
  enumeration cost doubles with ``k`` while the DP stays flat (its keys
  collapse shared suffixes — diamond chains have O(k) node types);
* (b) the duplicate-blowup measures of Section 1, computed exactly:
  shortest product paths and total multiplicities per answer on
  ``duplicate_bomb`` instances, without running the naive baseline.
"""

from __future__ import annotations

import time

from repro.core.compile import compile_query
from repro.core.count import (
    count_shortest_product_paths,
    count_total_multiplicity,
)
from repro.core.engine import DistinctShortestWalks
from repro.workloads.worstcase import diamond_chain, duplicate_bomb


def test_dp_count_vs_enumeration(benchmark, print_table):
    rows = []
    dp_times, enum_times = [], []
    for k in (8, 10, 12, 14):
        graph, nfa, s, t = diamond_chain(k, parallel=2)
        engine = DistinctShortestWalks(graph, nfa, s, t)
        engine.preprocess()

        t0 = time.perf_counter()
        dp = engine.count(method="dp")
        t1 = time.perf_counter()
        full = engine.count(method="enumerate")
        t2 = time.perf_counter()
        assert dp == full == 2 ** k
        dp_times.append(t1 - t0)
        enum_times.append(t2 - t1)
        rows.append(
            [
                k,
                dp,
                f"{(t1 - t0) * 1e3:.3f} ms",
                f"{(t2 - t1) * 1e3:.3f} ms",
            ]
        )
    benchmark.pedantic(
        lambda: engine.count(method="dp"), rounds=3, iterations=1
    )
    print_table(
        "EXP-COUNT (a): DP count vs enumeration — DP flat, enum ∝ answers",
        ["k", "answers", "DP count", "enumeration"],
        rows,
    )
    # Enumeration scales with the answer count (×64 answers from k=8 to
    # k=14); the DP must not.
    assert enum_times[-1] > 8 * enum_times[0]
    assert dp_times[-1] < max(4 * dp_times[0], 0.01)


def test_blowup_measures(benchmark, print_table):
    rows = []
    ratios = []
    for k, m in ((6, 2), (6, 3), (10, 3), (14, 3)):
        graph, nfa, s, t = duplicate_bomb(k, m)
        cq = compile_query(graph, nfa)
        si, ti = graph.vertex_id(s), graph.vertex_id(t)
        lam, paths = count_shortest_product_paths(cq, si, ti)
        _, mult = count_total_multiplicity(cq, si, ti)
        engine = DistinctShortestWalks(graph, nfa, s, t)
        answers = engine.count(method="dp")
        assert lam == k and answers == 1 and paths == m ** k
        ratios.append(paths / answers)
        rows.append([f"k={k}, m={m}", answers, paths, mult])
    benchmark.pedantic(
        lambda: count_shortest_product_paths(cq, si, ti),
        rounds=3,
        iterations=1,
    )
    print_table(
        "EXP-COUNT (b): duplicate blowup (product paths per answer)",
        ["instance", "answers", "product paths", "total multiplicity"],
        rows,
    )
    assert ratios[-1] == 3 ** 14  # Exponential copies of one answer.
