"""EXP-T18 — the memoryless variant (Theorem 18).

The memoryless enumerator recomputes its position from the previous
output on every call; Theorem 18 promises the same O(λ × |A|) delay.
We verify (a) the sequences are identical, (b) the per-output delay is
within a modest constant factor of the eager enumerator's, and (c) the
delay stays flat as |D| grows.
"""

from __future__ import annotations

import pytest

from repro.bench import loglog_slope, measure_delays
from repro.core.engine import DistinctShortestWalks
from repro.workloads.worstcase import diamond_chain

from benchmarks.bench_delay import _accept_all, _diamond_with_bulk


def test_memoryless_equals_eager_sequence(benchmark):
    graph, nfa, s, t = diamond_chain(10, parallel=2)
    eager = [
        w.edges
        for w in DistinctShortestWalks(graph, nfa, s, t).enumerate()
    ]
    engine = DistinctShortestWalks(graph, nfa, s, t, mode="memoryless")
    engine.preprocess()
    lazy = benchmark.pedantic(
        lambda: [w.edges for w in engine.enumerate()], rounds=2, iterations=1
    )
    assert eager == lazy


def test_memoryless_delay_comparison(benchmark, print_table):
    graph, nfa, s, t = diamond_chain(10, parallel=2)
    rows = []
    stats_by_mode = {}
    for mode in ("iterative", "memoryless"):
        engine = DistinctShortestWalks(graph, nfa, s, t, mode=mode)
        engine.preprocess()
        stats = measure_delays(engine.enumerate)
        stats_by_mode[mode] = stats
        rows.append(
            [
                mode,
                stats.outputs,
                f"{stats.mean_delay_s * 1e6:.2f} µs",
                f"{stats.max_delay_s * 1e6:.2f} µs",
            ]
        )
    engine = DistinctShortestWalks(graph, nfa, s, t, mode="memoryless")
    engine.preprocess()
    benchmark.pedantic(
        lambda: sum(1 for _ in engine.enumerate()), rounds=2, iterations=1
    )
    ratio = (
        stats_by_mode["memoryless"].mean_delay_s
        / max(stats_by_mode["iterative"].mean_delay_s, 1e-9)
    )
    rows.append(["ratio", "", f"{ratio:.2f}x", ""])
    print_table(
        "EXP-T18: memoryless vs eager delay (1024 answers, λ=10)",
        ["mode", "outputs", "mean delay", "max delay"],
        rows,
    )
    # Memoryless pays the guided re-descent: allow a generous constant
    # factor, but it must stay a *constant* (same asymptotics).
    assert ratio < 60, f"memoryless overhead not constant-like: {ratio:.1f}x"


def test_memoryless_delay_independent_of_database(benchmark, print_table):
    k = 8
    sizes, delays, rows = [], [], []
    for bulk in (0, 8_000, 32_000):
        graph = _diamond_with_bulk(k, 2, bulk)
        engine = DistinctShortestWalks(
            graph, _accept_all(), "v0", f"v{k}", mode="memoryless"
        )
        engine.preprocess()
        stats = measure_delays(engine.enumerate)
        assert stats.outputs == 2 ** k
        sizes.append(graph.size())
        delays.append(stats.mean_delay_s)
        rows.append(
            [graph.size(), f"{stats.mean_delay_s * 1e6:.2f} µs"]
        )
    slope = loglog_slope(sizes, delays)
    rows.append(["slope", f"{slope:.3f}"])
    benchmark.pedantic(
        lambda: sum(1 for _ in engine.enumerate()), rounds=2, iterations=1
    )
    print_table(
        "EXP-T18: memoryless delay vs |D| — flat (slope ≈ 0)",
        ["|D|", "mean delay"],
        rows,
    )
    assert slope < 0.3


@pytest.mark.parametrize("mode", ["iterative", "memoryless"])
def test_enumeration_modes_benchmark(benchmark, mode):
    graph, nfa, s, t = diamond_chain(9, parallel=2)
    engine = DistinctShortestWalks(graph, nfa, s, t, mode=mode)
    engine.preprocess()
    count = benchmark(lambda: sum(1 for _ in engine.enumerate()))
    assert count == 2 ** 9
