"""EXP-C20 — regex queries: Thompson (Corollary 20) vs Glushkov.

Thompson yields O(|R|) states/transitions (plus ε, which compilation
closes); Glushkov yields |R|+1 states but up to O(|R|²) transitions.
On union-heavy expressions the Glushkov transition count grows
quadratically while Thompson's stays linear — we measure both the
automaton sizes and the end-to-end pipeline, and assert identical
answers.
"""

from __future__ import annotations

import pytest

from repro.automata import glushkov_nfa, thompson_nfa
from repro.automata.regex_ast import ast_size
from repro.automata.regex_parser import parse_rpq
from repro.bench import loglog_slope, time_call
from repro.core.engine import DistinctShortestWalks
from repro.graph.generators import random_multilabel


def _union_heavy(k: int) -> str:
    """(a | a | ... | a)* b — k alternatives; Glushkov gets k² follows."""
    return "(" + " | ".join(["a"] * k) + ")* b"


def test_construction_sizes(benchmark, print_table):
    rows, sizes_r, thompson_deltas, glushkov_deltas = [], [], [], []
    for k in (2, 4, 8, 16):
        ast = parse_rpq(_union_heavy(k))
        r = ast_size(ast)
        thom = thompson_nfa(ast)
        glus = glushkov_nfa(ast)
        sizes_r.append(r)
        thompson_deltas.append(thom.transition_count)
        glushkov_deltas.append(glus.transition_count)
        rows.append(
            [
                k,
                r,
                thom.n_states,
                thom.transition_count,
                glus.n_states,
                glus.transition_count,
            ]
        )
    thompson_slope = loglog_slope(sizes_r, thompson_deltas)
    glushkov_slope = loglog_slope(sizes_r, glushkov_deltas)
    rows.append(
        ["slope", "", "", f"{thompson_slope:.2f}", "", f"{glushkov_slope:.2f}"]
    )
    benchmark.pedantic(
        lambda: (thompson_nfa(ast), glushkov_nfa(ast)), rounds=3, iterations=1
    )
    print_table(
        "EXP-C20 (a): construction sizes on (a|...|a)* b",
        ["k", "|R|", "Thompson |Q|", "Thompson |Δ|", "Glushkov |Q|",
         "Glushkov |Δ|"],
        rows,
    )
    assert thompson_slope < 1.3, "Thompson transitions must grow linearly"
    assert glushkov_slope > 1.6, "Glushkov transitions grow quadratically"


def test_end_to_end_same_answers(benchmark, print_table):
    graph = random_multilabel(
        400, 4_000, alphabet=("a", "b"), seed=13,
        ensure_path=("src", "dst", 5),
    )
    rows = []
    for k in (2, 8, 16):
        expression = _union_heavy(k)
        results = {}
        timings = {}
        for method in ("thompson", "glushkov"):
            from repro.automata import regex_to_nfa

            nfa = regex_to_nfa(expression, method=method)

            def run():
                engine = DistinctShortestWalks(graph, nfa, "src", "dst")
                return sorted(w.edges for w in engine.enumerate())

            timings[method] = time_call(run, repeat=2)
            results[method] = run()
        assert results["thompson"] == results["glushkov"]
        rows.append(
            [
                k,
                len(results["thompson"]),
                f"{timings['thompson'] * 1e3:.1f} ms",
                f"{timings['glushkov'] * 1e3:.1f} ms",
            ]
        )
    benchmark.pedantic(run, rounds=2, iterations=1)
    print_table(
        "EXP-C20 (b): end-to-end pipeline, Thompson vs Glushkov",
        ["k", "answers", "thompson", "glushkov"],
        rows,
    )


@pytest.mark.parametrize("method", ["thompson", "glushkov"])
def test_pipeline_benchmark(benchmark, method):
    graph = random_multilabel(
        300, 3_000, alphabet=("a", "b"), seed=13,
        ensure_path=("src", "dst", 5),
    )
    from repro.automata import regex_to_nfa

    nfa = regex_to_nfa(_union_heavy(8), method=method)

    def run():
        return DistinctShortestWalks(graph, nfa, "src", "dst").count()

    benchmark(run)
