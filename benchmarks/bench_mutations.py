"""EXP-LIVE — apply-k-ops-then-requery vs rebuild-then-requery.

The claim behind :mod:`repro.live`: absorbing a write stream through
the :class:`~repro.live.LiveGraph` delta overlay + fine-grained cache
invalidation beats the frozen-world alternative — rebuild the
immutable graph from its edge list and re-register it (version bump,
every cached plan and annotation gone) — by ≥5× end-to-end on a
mixed read/write workload whose writes touch labels the queries never
fire on.

Per workload (``transport`` and the ``label_soup`` worst case), both
sides execute the *identical* sequence through the same façade: warm
a repeated query mix, then K times {apply a small unrelated-label
write batch; re-run the mix}.  The live side calls
:meth:`Database.mutate` (annotations stay warm — the no-reindexing
invariant keeps them valid); the rebuild side replays the full edge
list through :class:`GraphBuilder` and re-registers (the caches
restart cold every batch).

Deterministic assertions (always on):

* live annotation-cache hit rate across the post-mutation re-query
  windows stays ≥ 50 % (measured: 100 % — the batches are
  unrelated-label, nothing is evicted);
* the rebuild side's post-mutation hit rate is exactly 0 % — the
  version bump throws everything away;
* both sides serve identical pages.

The ≥5× wall-clock bar is asserted under ``BENCH_MUT_STRICT=1`` (the
default; CI sets 0 on shared runners).  When ``BENCH_MUT_JSON`` names
a file the measured rows are dumped there — that is how
``BENCH_mutations.json`` at the repo root is produced.
"""

from __future__ import annotations

import json
import os
import random
import time
from typing import Dict, List, Tuple

from repro.api import Database
from repro.live import LiveGraph
from repro.graph.builder import GraphBuilder
from repro.workloads.transport import TRANSPORT_QUERIES, transport_network
from repro.workloads.worstcase import label_soup

SPEEDUP_TARGET = 5.0
HIT_RATE_TARGET = 0.5
STRICT = os.environ.get("BENCH_MUT_STRICT", "1") != "0"

N_BATCHES = 8
OPS_PER_BATCH = 4


def _edge_list(graph) -> List[Tuple]:
    """(src name, tgt name, label names, cost) for a full rebuild."""
    return [
        (
            graph.vertex_name(graph.src(e)),
            graph.vertex_name(graph.tgt(e)),
            graph.label_names_of(e),
            graph.cost(e),
        )
        for e in graph.edges()
    ]


def _rebuild(edges: List[Tuple], has_costs: bool):
    builder = GraphBuilder()
    for src, tgt, labels, cost in edges:
        builder.add_edge(src, tgt, labels, cost=cost if has_costs else None)
    return builder.build()


def _transport_setup():
    n = 96
    graph = transport_network(n_cities=n, hub_fraction=0.2, seed=7)
    rng = random.Random(13)
    mix = [
        (expression, f"city{s}", f"city{10 * t}", 4)
        for expression in (
            TRANSPORT_QUERIES["ground_only"],
            TRANSPORT_QUERIES["fly_then_ground"],
            TRANSPORT_QUERIES["no_bus"],
        )
        for s in range(3)
        for t in (1, 3)
    ]
    # Unrelated-label write stream: ferry links between random cities.
    batches = [
        [
            {
                "op": "add_edge",
                "src": f"city{rng.randrange(n)}",
                "tgt": f"city{rng.randrange(n)}",
                "labels": ["ferry"],
                "cost": rng.randint(5, 20),
            }
            for _ in range(OPS_PER_BATCH)
        ]
        for _ in range(N_BATCHES)
    ]
    return graph, mix, batches, True


def _label_soup_setup():
    # A long chain, many (query, source) pairs: each saturating
    # annotation sweeps the whole k-hop product regardless of target
    # distance, which is exactly the work the rebuild side redoes per
    # batch and the live side keeps cached.
    k = 144
    graph, _nfa, _source, _target = label_soup(
        k=k, parallel=2, extra_labels=8, noise_out=4
    )
    rng = random.Random(29)
    mix = [
        (expression, f"v{s}", f"v{s + 12}", 3)
        for expression in ("a+", "(a a)+", "(a a a)+")
        for s in (0, 6, 12, 18, 24, 30)
    ]
    # The writes pile further noise-label edges onto the chain — labels
    # the queries never fire on.
    batches = [
        [
            {
                "op": "add_edge",
                "src": f"v{rng.randrange(k)}",
                "tgt": f"v{rng.randrange(1, k + 1)}",
                "labels": [f"x{rng.randrange(8)}"],
            }
            for _ in range(OPS_PER_BATCH)
        ]
        for _ in range(N_BATCHES)
    ]
    return graph, mix, batches, False


def _run_mix(db: Database, mix) -> List:
    pages = []
    for expression, source, target, limit in mix:
        rs = (
            db.query(expression).from_(source).to(target).limit(limit).run()
        )
        pages.append([row.walk.edges for row in rs])
    return pages


def _pages_rendered(db: Database, mix) -> List:
    """Pages rendered name-wise so live/rebuild sides are comparable."""
    graph = db._handle(None).graph
    rendered = []
    for expression, source, target, limit in mix:
        rs = (
            db.query(expression).from_(source).to(target).limit(limit).run()
        )
        rendered.append(
            [
                [
                    (
                        graph.vertex_name(graph.src(e)),
                        graph.vertex_name(graph.tgt(e)),
                        graph.label_names_of(e),
                    )
                    for e in row.walk.edges
                ]
                for row in rs
            ]
        )
    return rendered


def _survival_rate(db: Database, before, mix, n_windows: int) -> float:
    """Fraction of warm annotation entries that survived the writes.

    ``1 - misses / (distinct (query, source) pairs × windows)``: a
    miss in a post-mutation window means the warm entry for that pair
    was evicted and had to be rebuilt.  (A raw hit *rate* would flatter
    the cold side — multiple targets share one per-source annotation,
    so even a from-scratch window scores intra-window hits.)
    """
    after = db.cache_stats()["annotation_cache"]
    distinct = len(
        {(expression, source) for expression, source, _t, _l in mix}
    )
    misses = after["misses"] - before["misses"]
    return max(0.0, 1.0 - misses / (distinct * n_windows))


def _live_side(graph, mix, batches) -> Tuple[float, float, List]:
    """(seconds, warm-entry survival rate, final pages)."""
    db = Database(LiveGraph(graph))
    _run_mix(db, mix)  # Warm.
    before = db.cache_stats()["annotation_cache"]
    t0 = time.perf_counter()
    for ops in batches:
        db.mutate(ops)
        _run_mix(db, mix)
    elapsed = time.perf_counter() - t0
    survival = _survival_rate(db, before, mix, len(batches))
    return elapsed, survival, _pages_rendered(db, mix)


def _rebuild_side(graph, mix, batches, has_costs) -> Tuple[float, float, List]:
    db = Database(graph)
    _run_mix(db, mix)  # Warm.
    edges = _edge_list(graph)
    before = db.cache_stats()["annotation_cache"]
    t0 = time.perf_counter()
    for ops in batches:
        for op in ops:
            edges.append(
                (
                    op["src"],
                    op["tgt"],
                    tuple(op["labels"]),
                    op.get("cost", 1),
                )
            )
        db.register("default", _rebuild(edges, has_costs))
        _run_mix(db, mix)
    elapsed = time.perf_counter() - t0
    survival = _survival_rate(db, before, mix, len(batches))
    return elapsed, survival, _pages_rendered(db, mix)


def _median_runs(fn, runs: int = 3):
    results = [fn() for _ in range(runs)]
    times = sorted(r[0] for r in results)
    median = times[len(times) // 2]
    # Hit rates and pages are deterministic across runs.
    return median, results[0][1], results[0][2]


def test_apply_requery_vs_rebuild_requery(benchmark, print_table):
    rows: List[Dict] = []
    failures: List[str] = []
    workloads = {
        "transport": _transport_setup(),
        "label_soup": _label_soup_setup(),
    }
    for name, (graph, mix, batches, has_costs) in workloads.items():
        live_s, live_hits, live_pages = _median_runs(
            lambda: _live_side(graph, mix, batches)
        )
        rebuild_s, rebuild_hits, rebuild_pages = _median_runs(
            lambda: _rebuild_side(graph, mix, batches, has_costs)
        )
        # Identical answers on both sides (rendered name-wise: the
        # rebuild renumbers edge ids).
        assert live_pages == rebuild_pages, name
        speedup = rebuild_s / live_s if live_s else float("inf")
        rows.append(
            {
                "workload": name,
                "batches": f"{len(batches)}x{OPS_PER_BATCH} ops",
                "queries": len(mix) * len(batches),
                "rebuild_s": round(rebuild_s, 4),
                "live_s": round(live_s, 4),
                "speedup": round(speedup, 2),
                "live_warm_kept": round(live_hits, 4),
                "rebuild_warm_kept": round(rebuild_hits, 4),
            }
        )
        # Deterministic cache-behaviour bars — always on.
        assert live_hits >= HIT_RATE_TARGET, (name, live_hits)
        assert rebuild_hits == 0.0, (name, rebuild_hits)
        if speedup < SPEEDUP_TARGET:
            failures.append(f"{name}: {speedup:.2f}x < {SPEEDUP_TARGET}x")

    print_table(
        "EXP-LIVE: apply+requery (LiveGraph + fine-grained "
        "invalidation) vs rebuild+requery (version bump), median of 3",
        list(rows[0].keys()),
        [list(r.values()) for r in rows],
    )

    out = os.environ.get("BENCH_MUT_JSON")
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "experiment": "EXP-LIVE",
                    "speedup_target": SPEEDUP_TARGET,
                    "hit_rate_target": HIT_RATE_TARGET,
                    "batches": N_BATCHES,
                    "ops_per_batch": OPS_PER_BATCH,
                    "rows": rows,
                },
                fh,
                indent=2,
            )
            fh.write("\n")

    graph, mix, batches, _ = workloads["transport"]
    live_db = Database(LiveGraph(graph))
    _run_mix(live_db, mix)
    benchmark.pedantic(
        lambda: (live_db.mutate(batches[0]), _run_mix(live_db, mix)),
        iterations=1,
        rounds=3,
    )
    if STRICT and failures:
        raise AssertionError(
            "apply+requery speedup below the EXP-LIVE bar: "
            + "; ".join(failures)
        )


def test_unrelated_hit_rate_vs_version_bump(benchmark, print_table):
    """The cache-warmth headline, isolated and deterministic.

    One unrelated-label batch against a warm database: fine-grained
    invalidation keeps every warm annotation entry on the re-query;
    the version-bump path (re-register/compact) drops them all.
    """
    graph, mix, batches, _ = _transport_setup()

    db = Database(LiveGraph(graph))
    _run_mix(db, mix)
    db.mutate(batches[0])
    before = db.cache_stats()["annotation_cache"]
    _run_mix(db, mix)
    fine_rate = _survival_rate(db, before, mix, 1)
    benchmark.pedantic(
        lambda: (db.mutate(batches[1]), _run_mix(db, mix)),
        iterations=1,
        rounds=3,
    )

    db2 = Database(LiveGraph(graph))
    _run_mix(db2, mix)
    db2.mutate(batches[0], compact=True)  # Compaction = version bump.
    before2 = db2.cache_stats()["annotation_cache"]
    _run_mix(db2, mix)
    bump_rate = _survival_rate(db2, before2, mix, 1)

    print_table(
        "EXP-LIVE (b): warm annotation entries kept across one "
        "unrelated-label batch",
        ["invalidation", "warm_entries_kept"],
        [
            ["fine-grained (mutate)", f"{fine_rate:.0%}"],
            ["version bump (register/compact)", f"{bump_rate:.0%}"],
        ],
    )
    assert fine_rate >= HIT_RATE_TARGET, fine_rate
    assert bump_rate == 0.0, bump_rate
