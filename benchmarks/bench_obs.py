"""EXP-OBS — observability overhead: instrumented vs disabled.

The tentpole claim behind :mod:`repro.obs`: full instrumentation —
counters, latency histograms, per-request span trees recorded to the
slow-query log (the serving default, ``slow_ms=0``) — costs at most
**5%** end-to-end on the EXP-PIPE service workload (first-64 pages of
the transport query mix), and a *disabled* bundle (shared null
instruments, no trace activation) costs at most **1%** against the
bare façade.  In floor terms (higher is better, 1.0 = free):
``speedup = t_reference / t_instrumented ≥ 0.95`` — the
``speedup_target`` tracked by ``check_floors.py``.

Methodology: the two sides run *interleaved, alternating-order*
passes of the identical request sequence and the reported speedup is
the **median of per-pair ratios** — scheduler drift on a shared
machine hits adjacent passes equally and cancels in the ratio, where
a measure-one-side-then-the-other design would see phantom ±10%
"overheads" from CPU frequency wander alone.

Deterministic assertions (always on):

* both service sides return identical answers (λ per request);
* the enabled side's registry counted every request and its latency
  histogram holds every observation;
* a cold request decomposes into the complete five-phase span tree
  (parse → compile → annotate → trim → enumerate) in the slow log;
* the disabled side's registry snapshot is empty — nothing leaked.

The ≥0.95× bars are asserted under ``BENCH_OBS_STRICT=1`` (the
default; CI sets 0 on shared runners).  ``BENCH_OBS_JSON`` dumps the
measured rows — that is how ``BENCH_obs.json`` at the repo root is
produced.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from typing import Callable, List, Tuple

from repro.api import Database
from repro.obs import Observability
from repro.service import QueryService
from repro.service.requests import QueryRequest
from repro.workloads.transport import TRANSPORT_QUERIES, transport_network

SPEEDUP_TARGET = 0.95  # Enabled within 5% of disabled (1.0 = free).
STRICT = os.environ.get("BENCH_OBS_STRICT", "1") != "0"

PASSES = 40


def _workload():
    graph = transport_network(n_cities=96, hub_fraction=0.2, seed=7)
    payloads = [
        {
            "query": expression,
            "source": f"city{s}",
            "target": f"city{10 * t}",
            "limit": 64,
        }
        for expression in (
            TRANSPORT_QUERIES["ground_only"],
            TRANSPORT_QUERIES["fly_then_ground"],
            TRANSPORT_QUERIES["no_bus"],
        )
        for s in range(3)
        for t in (1, 3)
    ]
    return graph, payloads


def _interleaved_ratio(
    pass_a: Callable[[], float], pass_b: Callable[[], float]
) -> Tuple[float, float, float]:
    """Median per-pair ``t_a / t_b`` over PASSES alternating passes.

    Returns ``(ratio, median_a, median_b)``.  Order alternates within
    each pair so neither side systematically runs first.
    """
    a_times: List[float] = []
    b_times: List[float] = []
    for i in range(PASSES):
        if i % 2:
            b_times.append(pass_b())
            a_times.append(pass_a())
        else:
            a_times.append(pass_a())
            b_times.append(pass_b())
    ratios = sorted(a / b for a, b in zip(a_times, b_times))
    return (
        statistics.median(ratios),
        statistics.median(a_times),
        statistics.median(b_times),
    )


def _service(graph, obs) -> QueryService:
    service = QueryService(max_workers=1, obs=obs)
    service.register_graph("default", graph)
    return service


def _service_pass(service, requests) -> Callable[[], float]:
    def one_pass() -> float:
        t0 = time.perf_counter()
        for request in requests:
            service.execute(request)
        return time.perf_counter() - t0

    return one_pass


def _facade_pass(graph, payloads, obs) -> Tuple[Callable[[], float], List]:
    db = Database(graph, obs=obs)
    queries = [
        db.query(p["query"]).from_(p["source"]).to(p["target"]).limit(64)
        for p in payloads
    ]
    answers = [(q.run().lam, len(q.run().all())) for q in queries]  # Warm.

    def one_pass() -> float:
        t0 = time.perf_counter()
        for q in queries:
            q.run().all()  # Materialize the page — run() is lazy.
        return time.perf_counter() - t0

    return one_pass, answers


def test_obs_overhead(benchmark, print_table):
    graph, payloads = _workload()
    requests = [QueryRequest.from_dict(p) for p in payloads]
    n_requests = len(payloads) * PASSES

    # -- service tier: disabled bundle vs fully enabled ----------------
    disabled = _service(graph, Observability.disabled())
    enabled = _service(graph, None)  # Default: enabled, slow_ms=0.
    disabled_answers = [disabled.execute(r).lam for r in requests]  # Warm.
    enabled_answers = [enabled.execute(r).lam for r in requests]
    # Instrumentation must not change a single answer.
    assert enabled_answers == disabled_answers

    service_speedup, disabled_s, enabled_s = _interleaved_ratio(
        _service_pass(disabled, requests), _service_pass(enabled, requests)
    )

    assert disabled.stats()["requests"] == 0  # Nothing counted.
    assert disabled.obs.registry.snapshot()["counters"] == {}
    total = len(payloads) * (PASSES + 1)  # Warm pass + timed passes.
    registry = enabled.obs.registry
    assert registry.counter_value("service.requests") == total
    snap = registry.snapshot()["histograms"]["service.request_seconds"]
    assert snap["count"] == total
    # A cold request (fresh expression, nothing cached) decomposes
    # into the full five-phase span tree in the slow log.
    cold = QueryRequest.from_dict(
        {
            # Same language as ground_only but a fresh expression
            # string, so nothing is cached for it.
            "query": f"({TRANSPORT_QUERIES['ground_only']})",
            "source": "city0",
            "target": "city10",
            "limit": 4,
        }
    )
    assert enabled.execute(cold).status == "ok"
    assert [s["name"] for s in enabled.obs.slowlog.entries()[-1]["spans"]] \
        == ["parse", "compile", "annotate", "trim", "enumerate"]
    disabled.close()
    enabled.close()

    # -- façade: no bundle at all vs a disabled bundle -----------------
    none_pass, none_answers = _facade_pass(graph, payloads, None)
    fd_pass, fd_answers = _facade_pass(
        graph, payloads, Observability.disabled()
    )
    assert none_answers == fd_answers
    facade_speedup, none_s, facade_disabled_s = _interleaved_ratio(
        none_pass, fd_pass
    )

    rows = [
        {
            "workload": "service/obs-disabled-vs-enabled",
            "requests": n_requests,
            "reference_s": round(disabled_s * PASSES, 4),
            "instrumented_s": round(enabled_s * PASSES, 4),
            "speedup": round(service_speedup, 3),
        },
        {
            "workload": "facade/none-vs-disabled",
            "requests": n_requests,
            "reference_s": round(none_s * PASSES, 4),
            "instrumented_s": round(facade_disabled_s * PASSES, 4),
            "speedup": round(facade_speedup, 3),
        },
    ]

    print_table(
        "EXP-OBS: instrumented vs disabled on the EXP-PIPE service "
        "workload (speedup = median per-pair reference/instrumented "
        "over interleaved passes; 1.0 = free, floor 0.95 = within 5%)",
        list(rows[0].keys()),
        [list(r.values()) for r in rows],
    )

    out = os.environ.get("BENCH_OBS_JSON")
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "experiment": "EXP-OBS",
                    "speedup_target": SPEEDUP_TARGET,
                    "passes": PASSES,
                    "requests": n_requests,
                    "rows": rows,
                },
                fh,
                indent=2,
            )
            fh.write("\n")

    # The pedantic timer re-times one fully-instrumented warm pass.
    service = _service(graph, None)
    for request in requests:
        service.execute(request)
    try:
        benchmark.pedantic(
            lambda: [service.execute(r) for r in requests],
            iterations=1,
            rounds=3,
        )
    finally:
        service.close()

    if STRICT:
        for row in rows:
            if row["speedup"] < SPEEDUP_TARGET:
                raise AssertionError(
                    f"observability overhead above the EXP-OBS bar on "
                    f"{row['workload']!r}: {row['speedup']}x < "
                    f"{SPEEDUP_TARGET}x (reference {row['reference_s']}s, "
                    f"instrumented {row['instrumented_s']}s)"
                )
