"""EXP-F1 / EXP-F3 / EXP-E9 — the paper's worked example, end to end.

Regenerates Figure 3's annotation tables and Example 9's answers, and
benchmarks the full pipeline on the 5-vertex database (a smoke-level
baseline for the scaling suites).
"""

from __future__ import annotations

from repro.core.annotate import annotate
from repro.core.compile import compile_query
from repro.core.engine import DistinctShortestWalks
from repro.core.trim import trim
from repro.workloads.fraud import (
    EXAMPLE9_EDGE_IDS,
    example9_automaton,
    example9_graph,
)

_EDGE_NAMES = {v: k for k, v in EXAMPLE9_EDGE_IDS.items()}


def test_figure3_annotation_tables(benchmark, print_table):
    graph = example9_graph()
    cq = compile_query(graph, example9_automaton())
    s, t = graph.vertex_id("Alix"), graph.vertex_id("Bob")

    def preprocess():
        ann = annotate(cq, s, t)
        return ann, trim(graph, ann)

    ann, trimmed = benchmark(preprocess)
    assert ann.lam == 3

    rows = []
    for v in graph.vertices():
        name = graph.vertex_name(v)
        for q in range(cq.n_states):
            length = ann.L[v].get(q, "⊥")
            cells = ann.B[v].get(q, {})
            b_text = "; ".join(
                f"i={i}:{sorted(preds)}" for i, preds in sorted(cells.items())
            )
            queue = trimmed.queue(v, q)
            c_text = (
                " ".join(f"({_EDGE_NAMES[e]},{sorted(x)})" for e, x in queue)
                if queue
                else "[]"
            )
            rows.append([name, q, length, b_text or "-", c_text])
    print_table(
        "EXP-F3: Figure 3 annotation (L, B, C) for ⟦A⟧(D, Alix, Bob)",
        ["vertex", "q", "L", "B[q][i]", "C[q]"],
        rows,
    )


def test_example9_answers(benchmark, print_table):
    graph = example9_graph()

    def run():
        engine = DistinctShortestWalks(
            graph, example9_automaton(), "Alix", "Bob"
        )
        return list(engine.enumerate_with_multiplicity())

    pairs = benchmark(run)
    assert len(pairs) == 4
    print_table(
        "EXP-E9: Example 9 answers (enumeration order, multiplicity)",
        ["#", "walk", "multiplicity"],
        [
            [i + 1, " ".join(_EDGE_NAMES[e] for e in w.edges), m]
            for i, (w, m) in enumerate(pairs)
        ],
    )
    # The DFS order fixed by TgtIdx: w4, w1, w2, w3.
    order = [
        tuple(_EDGE_NAMES[e] for e in w.edges) for w, _ in pairs
    ]
    assert order == [
        ("e2", "e4", "e8"),
        ("e1", "e5", "e8"),
        ("e1", "e6", "e8"),
        ("e2", "e3", "e7"),
    ]
