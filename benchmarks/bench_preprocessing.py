"""EXP-T2-PRE — Theorem 2's preprocessing bound O(|D| × |A|).

Two sweeps:

* database scaling: fixed query, random multi-label graphs of growing
  |D| — the log-log slope of preprocessing time vs |D| must be ≈ 1
  (linear), certainly below 1.5 (ruling out quadratic);
* query scaling: fixed database, complete m-state NFAs of growing |Δ| —
  again slope ≈ 1 in |Δ|.
"""

from __future__ import annotations

import pytest

from repro.bench import loglog_slope, time_call
from repro.core.annotate import annotate
from repro.core.compile import compile_query
from repro.core.trim import trim
from repro.graph.generators import random_multilabel
from repro.workloads.worstcase import wide_nfa
from repro.query import rpq

_QUERY = rpq("(a | b)* c (a | b | c)*").automaton


def _preprocess(graph, nfa, source, target):
    cq = compile_query(graph, nfa)
    ann = annotate(cq, source, target)
    trim(graph, ann)


@pytest.mark.parametrize("n_edges", [2_000, 4_000, 8_000, 16_000])
def test_preprocessing_scales_with_database(benchmark, n_edges):
    graph = random_multilabel(
        n_vertices=max(64, n_edges // 8),
        n_edges=n_edges,
        seed=42,
        ensure_path=("src", "dst", 6),
    )
    s, t = graph.vertex_id("src"), graph.vertex_id("dst")
    benchmark.extra_info["graph_size"] = graph.size()
    benchmark.pedantic(
        _preprocess, args=(graph, _QUERY, s, t), rounds=3, iterations=1
    )


def test_database_scaling_is_linear(benchmark, print_table):
    sizes, times = [], []
    rows = []
    for n_edges in (1_000, 2_000, 4_000, 8_000, 16_000):
        graph = random_multilabel(
            n_vertices=max(64, n_edges // 8),
            n_edges=n_edges,
            seed=42,
            ensure_path=("src", "dst", 6),
        )
        s, t = graph.vertex_id("src"), graph.vertex_id("dst")
        elapsed = time_call(lambda: _preprocess(graph, _QUERY, s, t), repeat=3)
        sizes.append(graph.size())
        times.append(elapsed)
        rows.append([graph.size(), n_edges, f"{elapsed * 1e3:.2f} ms"])
    slope = loglog_slope(sizes, times)
    rows.append(["slope", "", f"{slope:.3f}"])
    # One representative benchmark record for the largest instance.
    benchmark.pedantic(
        _preprocess, args=(graph, _QUERY, s, t), rounds=2, iterations=1
    )
    print_table(
        "EXP-T2-PRE (a): preprocessing vs |D| (fixed A) — slope ≈ 1",
        ["|D|", "|E|", "preprocessing"],
        rows,
    )
    assert slope < 1.5, f"preprocessing super-linear in |D|: {slope:.2f}"


def test_query_scaling_is_linear(benchmark, print_table):
    graph = random_multilabel(
        n_vertices=300, n_edges=3_000, seed=7, ensure_path=("src", "dst", 5)
    )
    s, t = graph.vertex_id("src"), graph.vertex_id("dst")
    sizes, times, rows = [], [], []
    for m in (2, 4, 8, 16):
        nfa = wide_nfa(m, ("a", "b"))
        delta_size = nfa.transition_count
        elapsed = time_call(lambda: _preprocess(graph, nfa, s, t), repeat=3)
        sizes.append(delta_size)
        times.append(elapsed)
        rows.append([m, delta_size, f"{elapsed * 1e3:.2f} ms"])
    slope = loglog_slope(sizes, times)
    rows.append(["slope", "", f"{slope:.3f}"])
    benchmark.pedantic(
        _preprocess, args=(graph, nfa, s, t), rounds=2, iterations=1
    )
    print_table(
        "EXP-T2-PRE (b): preprocessing vs |Δ| (fixed D) — slope ≈ 1",
        ["|Q|", "|Δ|", "preprocessing"],
        rows,
    )
    # |Δ| grows quadratically in m while the work is linear in |Δ|.
    assert slope < 1.4, f"preprocessing super-linear in |Δ|: {slope:.2f}"
