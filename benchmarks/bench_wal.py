"""EXP-WAL — group-commit durability overhead + recovery cost.

The durability claim behind :mod:`repro.wal`: making every mutation
batch crash-safe (length+CRC-framed append, fsync policy) costs less
than 2× end-to-end on the EXP-LIVE mixed read/write workload when the
default **group-commit** window amortizes the disk barriers — i.e.
``speedup = t_plain / t_wal ≥ 0.5`` (the floor tracked by
``check_floors.py``; higher is better, 1.0 = free).

Both sides execute the *identical* sequence through the same façade:
warm a repeated query mix, then K times {apply a small write batch;
re-run the mix}.  The plain side is ``Database(LiveGraph(graph))``;
the durable side is ``Database.open(wal_dir, ...)`` — same graph, same
batches, plus the write-ahead hook.  The ``sync="always"`` policy
(one fsync per batch) is measured too, but reported informationally
(disk-barrier latency on shared runners is not a claim this repo
makes).  A second table measures ``recover()`` wall time against log
length — the replay-scales-with-the-tail story behind snapshots.

Deterministic assertions (always on):

* the durable side's answers equal the plain side's, page for page;
* after the run, recovery of the WAL directory reproduces the final
  graph state exactly (name-wise);
* the log's record count equals the number of applied batches plus
  compactions — nothing dropped, nothing duplicated.

The ≥0.5× bar is asserted under ``BENCH_WAL_STRICT=1`` (the default;
CI sets 0 on shared runners).  ``BENCH_WAL_JSON`` dumps the measured
rows — that is how ``BENCH_wal.json`` at the repo root is produced.
"""

from __future__ import annotations

import json
import os
import random
import shutil
import tempfile
import time
from typing import Dict, List, Tuple

from repro.api import Database
from repro.live import LiveGraph
from repro.wal.frames import scan_file
from repro.wal.recovery import recover
from repro.wal.writer import LOG_NAME
from repro.workloads.transport import TRANSPORT_QUERIES, transport_network

SPEEDUP_TARGET = 0.5  # WAL'd apply+requery within 2x of plain.
STRICT = os.environ.get("BENCH_WAL_STRICT", "1") != "0"

N_BATCHES = 8
OPS_PER_BATCH = 4


def _workload():
    n = 96
    graph = transport_network(n_cities=n, hub_fraction=0.2, seed=7)
    rng = random.Random(13)
    mix = [
        (expression, f"city{s}", f"city{10 * t}", 4)
        for expression in (
            TRANSPORT_QUERIES["ground_only"],
            TRANSPORT_QUERIES["fly_then_ground"],
            TRANSPORT_QUERIES["no_bus"],
        )
        for s in range(3)
        for t in (1, 3)
    ]
    batches = [
        [
            {
                "op": "add_edge",
                "src": f"city{rng.randrange(n)}",
                "tgt": f"city{rng.randrange(n)}",
                "labels": ["ferry"],
                "cost": rng.randint(5, 20),
            }
            for _ in range(OPS_PER_BATCH)
        ]
        for _ in range(N_BATCHES)
    ]
    return graph, mix, batches


def _run_mix(db: Database, mix) -> None:
    for expression, source, target, limit in mix:
        db.query(expression).from_(source).to(target).limit(limit).run()


def _pages_rendered(db: Database, mix) -> List:
    graph = db._handle(None).graph
    rendered = []
    for expression, source, target, limit in mix:
        rs = (
            db.query(expression).from_(source).to(target).limit(limit).run()
        )
        rendered.append(
            [
                [
                    (
                        graph.vertex_name(graph.src(e)),
                        graph.vertex_name(graph.tgt(e)),
                        graph.label_names_of(e),
                    )
                    for e in row.walk.edges
                ]
                for row in rs
            ]
        )
    return rendered


def _apply_requery(db: Database, mix, batches) -> float:
    """Seconds for the timed {mutate; re-query} loop (pre-warmed)."""
    _run_mix(db, mix)  # Warm.
    t0 = time.perf_counter()
    for ops in batches:
        db.mutate(ops, compact=False)
        _run_mix(db, mix)
    return time.perf_counter() - t0


def _plain_side(graph, mix, batches) -> Tuple[float, List]:
    db = Database(LiveGraph(graph))
    elapsed = _apply_requery(db, mix, batches)
    return elapsed, _pages_rendered(db, mix)


def _wal_side(graph, mix, batches, sync: str) -> Tuple[float, List, str]:
    wal_dir = tempfile.mkdtemp(prefix=f"bench-wal-{sync}-")
    db = Database.open(wal_dir, graph=graph, sync=sync, group_window_ms=50.0)
    try:
        elapsed = _apply_requery(db, mix, batches)
        pages = _pages_rendered(db, mix)
    finally:
        db.close()
    return elapsed, pages, wal_dir


def _median(times: List[float]) -> float:
    return sorted(times)[len(times) // 2]


def _recovery_scaling(graph, batches) -> List[Dict]:
    """recover() wall time against log length (no snapshots past 0)."""
    rows = []
    for n_batches in (N_BATCHES, N_BATCHES * 4, N_BATCHES * 16):
        wal_dir = tempfile.mkdtemp(prefix="bench-wal-recovery-")
        try:
            db = Database.open(wal_dir, graph=graph, sync="none")
            for i in range(n_batches):
                db.mutate(batches[i % len(batches)], compact=False)
            db.close()
            t0 = time.perf_counter()
            state = recover(wal_dir)
            elapsed = time.perf_counter() - t0
            rows.append(
                {
                    "records": state.last_lsn,
                    "log_bytes": os.path.getsize(
                        os.path.join(wal_dir, LOG_NAME)
                    ),
                    "recover_s": round(elapsed, 4),
                }
            )
        finally:
            shutil.rmtree(wal_dir, ignore_errors=True)
    return rows


def test_group_commit_overhead(benchmark, print_table):
    graph, mix, batches = _workload()

    plain_times, wal_times, always_times = [], [], []
    plain_pages = wal_pages = always_pages = None
    wal_dirs: List[str] = []
    for _ in range(3):
        t, plain_pages = _plain_side(graph, mix, batches)
        plain_times.append(t)
        t, wal_pages, wal_dir = _wal_side(graph, mix, batches, "group")
        wal_times.append(t)
        wal_dirs.append(wal_dir)
        t, always_pages, always_dir = _wal_side(
            graph, mix, batches, "always"
        )
        always_times.append(t)
        shutil.rmtree(always_dir, ignore_errors=True)

    # Durability must not change a single answer.
    assert wal_pages == plain_pages
    assert always_pages == plain_pages

    # The log of the last group-commit run holds exactly the applied
    # batches (compaction was suppressed), and recovery reproduces the
    # final state the façade served from.
    scan = scan_file(os.path.join(wal_dirs[-1], LOG_NAME))
    assert scan.last_lsn == N_BATCHES, scan.last_lsn
    assert not scan.torn
    state = recover(wal_dirs[-1])
    recovered = Database(state.graph)
    assert _pages_rendered(recovered, mix) == wal_pages
    for wal_dir in wal_dirs:
        shutil.rmtree(wal_dir, ignore_errors=True)

    plain_s = _median(plain_times)
    wal_s = _median(wal_times)
    always_s = _median(always_times)
    speedup = plain_s / wal_s if wal_s else float("inf")
    rows = [
        {
            "workload": "transport/group-commit",
            "batches": f"{N_BATCHES}x{OPS_PER_BATCH} ops",
            "plain_s": round(plain_s, 4),
            "wal_s": round(wal_s, 4),
            "speedup": round(speedup, 2),
        }
    ]
    fsync_always = {
        "wal_s": round(always_s, 4),
        "speedup": round(plain_s / always_s if always_s else 0.0, 2),
    }
    recovery_rows = _recovery_scaling(graph, batches)

    print_table(
        "EXP-WAL: apply+requery with group-commit WAL vs no WAL "
        "(speedup = plain/wal; 1.0 = free, floor 0.5 = within 2x), "
        "median of 3",
        list(rows[0].keys()),
        [list(r.values()) for r in rows]
        + [
            [
                "transport/fsync-always (info)",
                f"{N_BATCHES}x{OPS_PER_BATCH} ops",
                round(plain_s, 4),
                fsync_always["wal_s"],
                fsync_always["speedup"],
            ]
        ],
    )
    print_table(
        "EXP-WAL (b): recovery wall time vs log length "
        "(snapshot at lsn 0 only — pure tail replay)",
        list(recovery_rows[0].keys()),
        [list(r.values()) for r in recovery_rows],
    )

    out = os.environ.get("BENCH_WAL_JSON")
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "experiment": "EXP-WAL",
                    "speedup_target": SPEEDUP_TARGET,
                    "batches": N_BATCHES,
                    "ops_per_batch": OPS_PER_BATCH,
                    "rows": rows,
                    "fsync_always": fsync_always,
                    "recovery": recovery_rows,
                },
                fh,
                indent=2,
            )
            fh.write("\n")

    # The pedantic timer re-times one durable {mutate; requery} round.
    wal_dir = tempfile.mkdtemp(prefix="bench-wal-timer-")
    db = Database.open(wal_dir, graph=graph, sync="group")
    try:
        _run_mix(db, mix)
        benchmark.pedantic(
            lambda: (db.mutate(batches[0], compact=False), _run_mix(db, mix)),
            iterations=1,
            rounds=3,
        )
    finally:
        db.close()
        shutil.rmtree(wal_dir, ignore_errors=True)

    if STRICT and speedup < SPEEDUP_TARGET:
        raise AssertionError(
            f"group-commit WAL overhead above the EXP-WAL bar: "
            f"{speedup:.2f}x < {SPEEDUP_TARGET}x (plain {plain_s:.4f}s, "
            f"wal {wal_s:.4f}s)"
        )
