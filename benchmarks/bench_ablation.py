"""EXP-ABL-TRIM — ablation of the ``Trim`` step (Section 3.2).

The paper keeps ``Trim`` because reading ``B_u[p]`` directly during the
enumeration "would increase the delay by a factor *d*, the maximal
in-degree of D".  This suite runs the trimmed enumeration and the
untrimmed strawman (:mod:`repro.baselines.untrimmed`) on the
``decoy_indegree`` family — identical answer sets, in-degrees padded
with never-matched edges — and checks:

* the trimmed delay stays flat as ``d`` grows (Theorem 2);
* the untrimmed delay grows roughly linearly with ``d``;
* the deterministic cell-scan counter confirms the wall-clock picture.
"""

from __future__ import annotations

from repro.baselines.untrimmed import UntrimmedStats, enumerate_untrimmed
from repro.bench import loglog_slope, measure_delays
from repro.core.engine import DistinctShortestWalks
from repro.workloads.worstcase import decoy_indegree

_K = 9  # Answer length λ; 2**_K = 512 answers per instance.
_DECOYS = (0, 8, 64, 512)
_REPEATS = 3  # Min-of-N repetitions absorbs scheduler/GC noise.


def _engines(decoys: int):
    graph, nfa, s, t = decoy_indegree(_K, parallel=2, decoys=decoys)
    engine = DistinctShortestWalks(graph, nfa, s, t)
    engine.preprocess()
    return engine


def _stable_mean_delay(run) -> float:
    """Min-of-N mean delay: the least noisy estimate of the true cost."""
    best = None
    for _ in range(_REPEATS):
        stats = measure_delays(run)
        assert stats.outputs == 2 ** _K
        if best is None or stats.mean_delay_s < best:
            best = stats.mean_delay_s
    return best


def test_trimmed_delay_flat_in_indegree(benchmark, print_table):
    degrees, delays, rows = [], [], []
    for decoys in _DECOYS:
        engine = _engines(decoys)
        mean_delay = _stable_mean_delay(engine.enumerate)
        d = engine.graph.max_in_degree()
        degrees.append(d)
        delays.append(mean_delay)
        rows.append(
            [decoys, d, 2 ** _K, f"{mean_delay * 1e6:.2f} µs"]
        )
    slope = loglog_slope(degrees, delays)
    rows.append(["slope", "", "", f"{slope:.3f}"])
    benchmark.pedantic(
        lambda: sum(1 for _ in engine.enumerate()), rounds=2, iterations=1
    )
    print_table(
        "EXP-ABL-TRIM (a): trimmed delay vs max in-degree — flat",
        ["decoys", "max in-degree", "outputs", "mean delay"],
        rows,
    )
    assert slope < 0.25, f"trimmed delay depends on d: slope {slope:.2f}"


def test_untrimmed_delay_grows_with_indegree(benchmark, print_table):
    degrees, delays, rows = [], [], []
    for decoys in _DECOYS:
        engine = _engines(decoys)
        ann = engine.annotation

        def run():
            return enumerate_untrimmed(
                engine.graph, ann, ann.lam, engine.target, ann.target_states
            )

        mean_delay = _stable_mean_delay(run)
        d = engine.graph.max_in_degree()
        degrees.append(d)
        delays.append(mean_delay)
        rows.append(
            [decoys, d, 2 ** _K, f"{mean_delay * 1e6:.2f} µs"]
        )
    slope = loglog_slope(degrees, delays)
    rows.append(["slope", "", "", f"{slope:.3f}"])
    benchmark.pedantic(
        lambda: sum(1 for _ in run()), rounds=2, iterations=1
    )
    print_table(
        "EXP-ABL-TRIM (b): untrimmed delay vs max in-degree — ~linear",
        ["decoys", "max in-degree", "outputs", "mean delay"],
        rows,
    )
    # 0 → 512 decoys: the strawman must degrade clearly (the bound says
    # factor d; wall-clock slope well above the trimmed one suffices).
    assert slope > 0.35, f"untrimmed delay unexpectedly flat: slope {slope:.2f}"
    assert delays[-1] > 5 * delays[0]


def test_untrimmed_scan_counter(benchmark, print_table):
    """Deterministic version of (b): B-cell probes per output."""
    rows = []
    per_output = []
    for decoys in _DECOYS:
        engine = _engines(decoys)
        ann = engine.annotation
        stats = UntrimmedStats()
        outputs = list(
            enumerate_untrimmed(
                engine.graph,
                ann,
                ann.lam,
                engine.target,
                ann.target_states,
                stats=stats,
            )
        )
        assert len(outputs) == 2 ** _K
        ratio = stats.cells_scanned / stats.outputs
        per_output.append(ratio)
        rows.append(
            [
                decoys,
                engine.graph.max_in_degree(),
                stats.cells_scanned,
                f"{ratio:.1f}",
            ]
        )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_table(
        "EXP-ABL-TRIM (c): B-cell probes per output (deterministic)",
        ["decoys", "max in-degree", "cells scanned", "cells/output"],
        rows,
    )
    # Probes per output scale with the in-degree padding.
    assert per_output[-1] > 50 * per_output[0]
