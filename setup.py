"""Setuptools shim.

All metadata lives in ``pyproject.toml``; this file exists so that
legacy editable installs (``pip install -e . --no-use-pep517``) work on
environments without the ``wheel`` package — such as offline boxes.
"""

from setuptools import setup

setup()
